package krimp

import (
	"math"
	"math/rand"
	"testing"

	"cspm/internal/fim"
)

// patternedDB plants the itemset {0,1,2} in most transactions plus noise.
func patternedDB(seed int64, n int) *fim.DB {
	rng := rand.New(rand.NewSource(seed))
	raw := make([][]fim.Item, n)
	for i := range raw {
		if rng.Float64() < 0.7 {
			raw[i] = append(raw[i], 0, 1, 2)
		}
		for it := 3; it < 10; it++ {
			if rng.Float64() < 0.2 {
				raw[i] = append(raw[i], fim.Item(it))
			}
		}
		if len(raw[i]) == 0 {
			raw[i] = append(raw[i], fim.Item(3+rng.Intn(7)))
		}
	}
	return fim.NewDB(raw)
}

func TestSingletonTableCoversLosslessly(t *testing.T) {
	db := patternedDB(1, 50)
	ct := NewCodeTable(db)
	if err := ct.Decode(); err != nil {
		t.Fatal(err)
	}
	// Total usage with singletons = total item occurrences.
	occ := 0
	for _, tx := range db.Txs {
		occ += len(tx)
	}
	if ct.TotalUsage() != occ {
		t.Fatalf("TotalUsage = %d, want %d", ct.TotalUsage(), occ)
	}
}

func TestAddItemsetImprovesPlantedDB(t *testing.T) {
	db := patternedDB(2, 80)
	ct := NewCodeTable(db)
	before := ct.TotalDL()
	ct.AddItemset([]fim.Item{0, 1, 2})
	after := ct.TotalDL()
	if after >= before {
		t.Fatalf("planted itemset did not compress: %v -> %v", before, after)
	}
	if err := ct.Decode(); err != nil {
		t.Fatal(err)
	}
}

func TestAddRemoveRoundTrip(t *testing.T) {
	db := patternedDB(3, 40)
	ct := NewCodeTable(db)
	before := ct.TotalDL()
	e := ct.AddItemset([]fim.Item{0, 1})
	ct.RemoveEntry(e)
	if math.Abs(ct.TotalDL()-before) > 1e-9 {
		t.Fatalf("add+remove changed DL: %v -> %v", before, ct.TotalDL())
	}
}

func TestAddExistingItemsetIdempotent(t *testing.T) {
	db := patternedDB(4, 40)
	ct := NewCodeTable(db)
	e1 := ct.AddItemset([]fim.Item{0, 1, 2})
	e2 := ct.AddItemset([]fim.Item{2, 1, 0})
	if e1 != e2 {
		t.Fatal("re-adding an itemset created a duplicate entry")
	}
}

func TestSingletonsNotRemovable(t *testing.T) {
	db := patternedDB(5, 30)
	ct := NewCodeTable(db)
	entries := ct.Entries()
	before := len(ct.Entries())
	ct.RemoveEntry(entries[0]) // a singleton
	if len(ct.Entries()) != before {
		t.Fatal("singleton was removed")
	}
}

func TestCoverDisjointAndOrdered(t *testing.T) {
	db := fim.NewDB([][]fim.Item{{0, 1, 2, 3}})
	ct := NewCodeTable(db)
	ct.AddItemset([]fim.Item{0, 1})
	ct.AddItemset([]fim.Item{1, 2}) // overlaps {0,1}; cover must stay disjoint
	cover := ct.CoverTx(db.Txs[0])
	seen := map[fim.Item]int{}
	for _, e := range cover {
		for _, it := range e.Items {
			seen[it]++
		}
	}
	for it, n := range seen {
		if n != 1 {
			t.Fatalf("item %d covered %d times", it, n)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("cover misses items: %v", seen)
	}
}

func TestMineKrimp(t *testing.T) {
	db := patternedDB(6, 100)
	res, err := Mine(db, Options{MinSupport: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalDL >= res.BaselineDL {
		t.Fatalf("Krimp failed to compress: %v >= %v", res.FinalDL, res.BaselineDL)
	}
	if res.Accepted == 0 {
		t.Fatal("no candidates accepted on a planted database")
	}
	// The planted pattern must be in the final table.
	found := false
	for _, e := range res.CT.NonSingletons() {
		if len(e.Items) == 3 && e.Items[0] == 0 && e.Items[1] == 1 && e.Items[2] == 2 {
			found = true
		}
	}
	if !found {
		t.Error("planted itemset {0,1,2} not in code table")
	}
	if err := res.CT.Decode(); err != nil {
		t.Fatal(err)
	}
}

func TestMineValidation(t *testing.T) {
	if _, err := Mine(patternedDB(7, 10), Options{MinSupport: 0}); err == nil {
		t.Fatal("MinSupport 0 accepted")
	}
}

func TestUsageSumsMatchTotal(t *testing.T) {
	db := patternedDB(8, 60)
	res, err := Mine(db, Options{MinSupport: 4})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, e := range res.CT.Entries() {
		sum += e.Usage
		if e.Tids.Len() != e.Usage {
			t.Fatalf("entry %v: usage %d != |tids| %d", e.Items, e.Usage, e.Tids.Len())
		}
	}
	if sum != res.CT.TotalUsage() {
		t.Fatalf("usage sum %d != total %d", sum, res.CT.TotalUsage())
	}
}
