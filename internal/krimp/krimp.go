package krimp

import (
	"fmt"
	"sort"

	"cspm/internal/fim"
)

// Options configures the Krimp miner. Krimp, unlike CSPM, is not
// parameter-free: it needs a support threshold for its candidate miner.
type Options struct {
	MinSupport    int // absolute support for the Eclat candidate pass
	MaxLen        int // candidate itemset size cap (0 = unbounded)
	MaxCandidates int // safety cap on candidates considered (0 = unbounded)
}

// Result bundles the mined code table with run diagnostics.
type Result struct {
	CT         *CodeTable
	BaselineDL float64
	FinalDL    float64
	Accepted   int
	Considered int
}

// Mine runs the Krimp algorithm: mine frequent itemsets, order them in the
// standard candidate order (support desc, length desc, lexicographic), and
// greedily keep each candidate that improves total compressed size.
func Mine(db *fim.DB, opts Options) (*Result, error) {
	if opts.MinSupport < 1 {
		return nil, fmt.Errorf("krimp: MinSupport must be >= 1, got %d", opts.MinSupport)
	}
	maxLen := opts.MaxLen
	if maxLen == 0 {
		maxLen = 12
	}
	cands, err := fim.Eclat(db, fim.EclatOptions{MinSupport: opts.MinSupport, MaxLen: maxLen})
	if err != nil {
		return nil, err
	}
	// Keep only proper itemsets; singletons are already in the table.
	multi := cands[:0]
	for _, c := range cands {
		if len(c.Items) >= 2 {
			multi = append(multi, c)
		}
	}
	sort.SliceStable(multi, func(i, j int) bool {
		a, b := multi[i], multi[j]
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if len(a.Items) != len(b.Items) {
			return len(a.Items) > len(b.Items)
		}
		return lessItems(a.Items, b.Items)
	})
	if opts.MaxCandidates > 0 && len(multi) > opts.MaxCandidates {
		multi = multi[:opts.MaxCandidates]
	}
	ct := NewCodeTable(db)
	res := &Result{CT: ct, BaselineDL: ct.TotalDL()}
	best := res.BaselineDL
	for _, c := range multi {
		res.Considered++
		_, rollback := ct.TryItemset(c.Items)
		if dl := ct.TotalDL(); dl < best {
			best = dl
			res.Accepted++
		} else if rollback != nil {
			rollback()
		}
	}
	res.FinalDL = best
	return res, nil
}
