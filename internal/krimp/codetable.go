// Package krimp implements the Krimp compression framework for transaction
// databases (Vreeken et al., paper [20]): a code table of itemsets, the
// standard cover function, and MDL scoring. CSPM uses it in two roles: as
// the §IV-F step-1 miner of multi-value coresets, and as the foundation the
// SLIM baseline builds on.
package krimp

import (
	"fmt"
	"math"
	"sort"

	"cspm/internal/fim"
	"cspm/internal/graph"
	"cspm/internal/intset"
	"cspm/internal/mdl"
)

// Entry is a code-table row: an itemset with its current cover usage and the
// transactions it covers.
type Entry struct {
	Items   []fim.Item // sorted
	Support int        // occurrence count in the database (cover-independent)
	Usage   int        // times used by the current cover
	Tids    intset.Set // transactions where the entry is used
}

// CodeLen returns the entry's Shannon code length under total cover usage.
func (e *Entry) CodeLen(totalUsage int) float64 {
	if e.Usage == 0 || totalUsage == 0 {
		return math.Inf(1)
	}
	return -math.Log2(float64(e.Usage) / float64(totalUsage))
}

// CodeTable is a Krimp code table over a fixed database. Singletons are
// always present, so every transaction stays coverable (lossless coding).
type CodeTable struct {
	db         *fim.DB
	stLen      []float64 // standard code per item
	entries    []*Entry  // all entries in standard cover order
	totalUsage int

	// Scratch state for CoverTx: mark[i] == markGen means item i is still
	// uncovered in the transaction being covered. Avoids a map allocation
	// per (transaction, recover) pair — Recover runs once per candidate try
	// in SLIM, so this is the miner's hottest loop.
	mark    []uint32
	markGen uint32
}

// NewCodeTable builds the singleton-only code table (Krimp's ST baseline)
// and covers the database with it.
func NewCodeTable(db *fim.DB) *CodeTable {
	freqs := db.ItemFreqs()
	st := mdl.NewStandardTableFromFreqs(freqs)
	ct := &CodeTable{db: db, stLen: make([]float64, db.NumItems), mark: make([]uint32, db.NumItems)}
	for i := range ct.stLen {
		ct.stLen[i] = st.Len(graph.AttrID(i))
	}
	for i := 0; i < db.NumItems; i++ {
		if freqs[i] == 0 {
			continue
		}
		ct.entries = append(ct.entries, &Entry{Items: []fim.Item{fim.Item(i)}, Support: freqs[i]})
	}
	ct.sortEntries()
	ct.Recover()
	return ct
}

// sortEntries restores the standard cover order: longer itemsets first, then
// higher support, then lexicographic items (Krimp's canonical order).
func (ct *CodeTable) sortEntries() {
	sort.SliceStable(ct.entries, func(i, j int) bool {
		a, b := ct.entries[i], ct.entries[j]
		if len(a.Items) != len(b.Items) {
			return len(a.Items) > len(b.Items)
		}
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		return lessItems(a.Items, b.Items)
	})
}

func lessItems(a, b []fim.Item) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// support counts the transactions containing all items of set.
func (ct *CodeTable) support(set []fim.Item) int {
	n := 0
	for _, tx := range ct.db.Txs {
		if fim.Contains(tx, set) {
			n++
		}
	}
	return n
}

// CoverTx covers one transaction with the current table, returning the
// entries used, in cover order. The cover is greedy and disjoint: the first
// entry (in standard cover order) fully contained in the uncovered remainder
// is taken.
func (ct *CodeTable) CoverTx(tx fim.Transaction) []*Entry {
	ct.markGen++
	gen := ct.markGen
	for _, it := range tx {
		ct.mark[it] = gen
	}
	remaining := len(tx)
	var used []*Entry
	for _, e := range ct.entries {
		if remaining == 0 {
			break
		}
		if len(e.Items) > remaining {
			continue
		}
		ok := true
		for _, it := range e.Items {
			if ct.mark[it] != gen {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		used = append(used, e)
		for _, it := range e.Items {
			ct.mark[it] = gen - 1 // covered
		}
		remaining -= len(e.Items)
	}
	if remaining != 0 {
		// Unreachable while singletons stay in the table.
		panic(fmt.Sprintf("krimp: transaction %v not coverable", tx))
	}
	return used
}

// Recover recomputes usages and tid lists by covering the whole database.
func (ct *CodeTable) Recover() {
	for _, e := range ct.entries {
		e.Usage = 0
		e.Tids = nil
	}
	ct.totalUsage = 0
	tidBuf := make(map[*Entry][]uint32)
	for t, tx := range ct.db.Txs {
		for _, e := range ct.CoverTx(tx) {
			e.Usage++
			ct.totalUsage++
			tidBuf[e] = append(tidBuf[e], uint32(t))
		}
	}
	for e, tids := range tidBuf {
		e.Tids = intset.FromSorted(tids)
	}
}

// DataDL returns L(D|CT): the cost of the database coded with the table.
func (ct *CodeTable) DataDL() float64 {
	sum := 0.0
	for _, e := range ct.entries {
		if e.Usage > 0 {
			sum += float64(e.Usage) * e.CodeLen(ct.totalUsage)
		}
	}
	return sum
}

// ModelDL returns L(CT|D): every in-use entry pays its standard spell-out
// plus its own code.
func (ct *CodeTable) ModelDL() float64 {
	sum := 0.0
	for _, e := range ct.entries {
		if e.Usage == 0 {
			continue
		}
		for _, it := range e.Items {
			sum += ct.stLen[it]
		}
		sum += e.CodeLen(ct.totalUsage)
	}
	return sum
}

// TotalDL returns L(CT, D) = L(CT|D) + L(D|CT).
func (ct *CodeTable) TotalDL() float64 { return ct.DataDL() + ct.ModelDL() }

// AddItemset inserts an itemset (≥2 items), re-sorts, and re-covers.
// Returns the new entry; adding an existing itemset returns the existing
// entry unchanged.
func (ct *CodeTable) AddItemset(items []fim.Item) *Entry {
	sorted := append([]fim.Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if e := ct.find(sorted); e != nil {
		return e
	}
	e := &Entry{Items: sorted, Support: ct.support(sorted)}
	ct.entries = append(ct.entries, e)
	ct.sortEntries()
	ct.Recover()
	return e
}

// TryItemset adds the itemset and re-covers, returning the new entry and a
// rollback that restores the previous table and cover without another
// re-cover. The rollback must be called at most once, and only while no
// other mutation has happened in between. Adding an itemset that is already
// present returns (entry, nil).
func (ct *CodeTable) TryItemset(items []fim.Item) (*Entry, func()) {
	sorted := append([]fim.Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if e := ct.find(sorted); e != nil {
		return e, nil
	}
	type state struct {
		e     *Entry
		usage int
		tids  intset.Set
	}
	prev := make([]state, len(ct.entries))
	for i, e := range ct.entries {
		prev[i] = state{e, e.Usage, e.Tids}
	}
	prevTotal := ct.totalUsage
	e := &Entry{Items: sorted, Support: ct.support(sorted)}
	ct.entries = append(ct.entries, e)
	ct.sortEntries()
	ct.Recover()
	rollback := func() {
		for i, x := range ct.entries {
			if x == e {
				ct.entries = append(ct.entries[:i], ct.entries[i+1:]...)
				break
			}
		}
		for _, st := range prev {
			st.e.Usage = st.usage
			st.e.Tids = st.tids
		}
		ct.totalUsage = prevTotal
	}
	return e, rollback
}

// RemoveEntry deletes a non-singleton entry and re-covers.
func (ct *CodeTable) RemoveEntry(e *Entry) {
	if len(e.Items) <= 1 {
		return // singletons are permanent
	}
	for i, x := range ct.entries {
		if x == e {
			ct.entries = append(ct.entries[:i], ct.entries[i+1:]...)
			break
		}
	}
	ct.Recover()
}

func (ct *CodeTable) find(items []fim.Item) *Entry {
	for _, e := range ct.entries {
		if len(e.Items) != len(items) {
			continue
		}
		same := true
		for i := range items {
			if e.Items[i] != items[i] {
				same = false
				break
			}
		}
		if same {
			return e
		}
	}
	return nil
}

// Has reports whether the itemset (sorted) is already in the table.
func (ct *CodeTable) Has(items []fim.Item) bool { return ct.find(items) != nil }

// Entries returns the in-use entries in standard cover order.
func (ct *CodeTable) Entries() []*Entry {
	out := make([]*Entry, 0, len(ct.entries))
	for _, e := range ct.entries {
		if e.Usage > 0 {
			out = append(out, e)
		}
	}
	return out
}

// NonSingletons returns the in-use entries with at least two items.
func (ct *CodeTable) NonSingletons() []*Entry {
	out := make([]*Entry, 0)
	for _, e := range ct.entries {
		if e.Usage > 0 && len(e.Items) >= 2 {
			out = append(out, e)
		}
	}
	return out
}

// TotalUsage reports the number of codes emitted by the current cover.
func (ct *CodeTable) TotalUsage() int { return ct.totalUsage }

// DB returns the database the table covers.
func (ct *CodeTable) DB() *fim.DB { return ct.db }

// Decode verifies losslessness: re-expanding every transaction's cover must
// reproduce the transaction exactly. Returns an error on the first mismatch.
func (ct *CodeTable) Decode() error {
	for t, tx := range ct.db.Txs {
		var items []fim.Item
		for _, e := range ct.CoverTx(tx) {
			items = append(items, e.Items...)
		}
		sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
		if len(items) != len(tx) {
			return fmt.Errorf("krimp: tx %d decodes to %d items, want %d", t, len(items), len(tx))
		}
		for i := range items {
			if items[i] != tx[i] {
				return fmt.Errorf("krimp: tx %d decodes wrongly at position %d", t, i)
			}
		}
	}
	return nil
}
