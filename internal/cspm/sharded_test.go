package cspm

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestEdgeCutPartsCoverAndBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomGraph(rng, 60, 6, 0.1, 0.4)
	for _, k := range []int{1, 2, 4, 7} {
		parts := edgeCutParts(g, k)
		if len(parts) != k {
			t.Fatalf("k=%d: got %d parts", k, len(parts))
		}
		seen := make([]bool, g.NumVertices())
		for _, part := range parts {
			for i, v := range part {
				if i > 0 && part[i-1] >= v {
					t.Fatalf("k=%d: part not sorted", k)
				}
				if seen[v] {
					t.Fatalf("k=%d: vertex %d assigned twice", k, v)
				}
				seen[v] = true
			}
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("k=%d: vertex %d unassigned", k, v)
			}
		}
		target := (g.NumVertices() + k - 1) / k
		for pi, part := range parts {
			// Every part except the last is filled to the target exactly;
			// the last absorbs the remainder.
			if pi < k-1 && len(part) != target {
				t.Fatalf("k=%d: part %d holds %d vertices, want %d", k, pi, len(part), target)
			}
		}
		if !reflect.DeepEqual(parts, edgeCutParts(g, k)) {
			t.Fatalf("k=%d: edge cut is not deterministic", k)
		}
	}
}

func TestShardStrategyString(t *testing.T) {
	if ShardAuto.String() != "auto" || ShardComponents.String() != "components" || ShardEdgeCut.String() != "edgecut" {
		t.Fatalf("strategy strings: %q %q %q", ShardAuto, ShardComponents, ShardEdgeCut)
	}
}

// TestNewStepperValidates pins the Validate call in NewStepper: every
// rejection path must panic rather than seed a broken search.
func TestNewStepperValidates(t *testing.T) {
	g := fig1(t)
	for _, opts := range []Options{
		{Workers: -1},
		{MaxIterations: -1},
		{Shards: -1},
		{ShardStrategy: ShardStrategy(42)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewStepper accepted invalid %+v", opts)
				}
			}()
			NewStepper(g, opts)
		}()
	}
	// And the zero value still constructs.
	if s := NewStepper(g, Options{}); s == nil {
		t.Fatal("NewStepper rejected the zero options")
	}
}
