package cspm

import (
	"runtime"
	"slices"
	"sync"

	"cspm/internal/graph"
	"cspm/internal/intset"
	"cspm/internal/invdb"
	"cspm/internal/mdl"
)

// ShardStrategy selects how MineSharded partitions the graph. See DESIGN.md
// "Sharded mining" for the exactness argument behind each strategy.
type ShardStrategy int

const (
	// ShardAuto picks ShardComponents when the graph splits into more than
	// one attribute-closed component group and ShardEdgeCut otherwise.
	ShardAuto ShardStrategy = iota
	// ShardComponents shards by attribute-closed component groups:
	// connected components, merged whenever two components share an
	// attribute value. No coreset line, leafset occurrence or co-occurring
	// candidate pair can span two groups, so the sharded search applies
	// exactly the merges the monolithic search would and the merged model
	// is bit-identical to Mine's.
	ShardComponents
	// ShardEdgeCut shards a single entangled component by cutting edges:
	// vertices are split into balanced BFS regions (every vertex keeps its
	// full star — shards read leafsets from the global adjacency), shards
	// mine concurrently, and a sequential refinement pass reassembles the
	// exact global database from the shard merges and finishes the search.
	// The result is a valid compressing model but — unlike ShardComponents
	// — not guaranteed bit-identical to the monolithic greedy.
	ShardEdgeCut
)

func (s ShardStrategy) String() string {
	switch s {
	case ShardComponents:
		return "components"
	case ShardEdgeCut:
		return "edgecut"
	default:
		return "auto"
	}
}

// MineSharded mines g by partitioning it into shards mined concurrently and
// merging the per-shard models with exact description-length accounting. The
// total worker budget (Options.Workers, 0 = all cores) is split across
// shards; Options.Shards caps the shard count. Options.MaxIterations caps
// each shard's merges independently. It panics if opts fails Validate.
func MineSharded(g *graph.Graph, opts Options) *Model {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	groups := graph.AttrClosedComponents(g)
	strategy := opts.ShardStrategy
	if strategy == ShardAuto {
		if groups.Count > 1 {
			strategy = ShardComponents
		} else {
			strategy = ShardEdgeCut
		}
	}
	k := opts.Shards
	if k == 0 {
		k = runtime.GOMAXPROCS(0)
	}
	if strategy == ShardComponents && k > groups.Count {
		k = groups.Count
	}
	if n := g.NumVertices(); k > n {
		k = n
	}
	if k <= 1 {
		m := MineDB(invdb.FromGraph(g), g.Vocab(), opts)
		m.ShardCount = 1
		return m
	}
	if strategy == ShardComponents {
		return mineComponentShards(g, opts, groups, k)
	}
	return mineEdgeCutShards(g, opts, k)
}

// shardRun is the unit of concurrent mining: a vertex slice of the graph,
// its database, and the search's inputs/outputs.
type shardRun struct {
	verts []graph.VertexID // sorted global vertex ids; local id = index

	db    *invdb.DB
	init  []invdb.LineStat // lines before any merge
	final []invdb.LineStat // lines after the shard's search
	stats *runStats
}

// runShards builds and mines every shard concurrently, splitting the total
// worker budget: each shard search gets at least one evaluator, and a
// semaphore caps the number of concurrently running shards so fewer workers
// than shards degrades to bounded concurrency (Workers=1 → one shard at a
// time) instead of oversubscribing the budget. maxConcurrent tightens the
// semaphore further when positive (the cached miner runs one shard per dirty
// component group but honours Options.Shards as its concurrency bound).
// Results are deterministic regardless: each shard's search is a pure
// function of (graph, st, verts), and all cross-shard accounting happens
// after the barrier in fixed shard order.
func runShards(g *graph.Graph, st *mdl.StandardTable, opts Options, shards []*shardRun, maxConcurrent int) {
	workers := opts.workerCount()
	concurrent := min(workers, len(shards))
	if maxConcurrent > 0 {
		concurrent = min(concurrent, maxConcurrent)
	}
	// Split the budget over the shards that can actually run at once, not
	// the full shard list: with more shards than concurrency slots (the
	// cached miner's one-run-per-dirty-group shape) a per-shard split would
	// strand most of the budget. For MineSharded's shapes concurrent equals
	// min(workers, len(shards)), so the split is unchanged there.
	base, extra := workers/concurrent, workers%concurrent
	sem := make(chan struct{}, concurrent)
	var wg sync.WaitGroup
	for i, sh := range shards {
		shOpts := opts
		shOpts.Workers = base
		if i < extra {
			shOpts.Workers++
		}
		if shOpts.Workers < 1 {
			shOpts.Workers = 1
		}
		wg.Add(1)
		go func(sh *shardRun, shOpts Options) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sh.db = invdb.FromGraphShard(g, st, sh.verts)
			sh.init = sh.db.AppendLineStats(nil)
			if shOpts.CollectStats {
				sh.stats = &runStats{}
			}
			switch shOpts.Variant {
			case Basic:
				mineBasic(sh.db, shOpts, sh.stats)
			default:
				minePartial(sh.db, shOpts, sh.stats)
			}
			sh.final = sh.db.AppendLineStats(nil)
		}(sh, shOpts)
	}
	wg.Wait()
}

// appendShardStats folds a shard's run diagnostics into the merged model.
func appendShardStats(m *Model, st *runStats, shard int, refinement bool) {
	if st == nil {
		return
	}
	m.Iterations += st.iterations
	m.GainEvals += st.gainEvals
	for _, it := range st.perIter {
		it.Iteration = len(m.PerIter) + 1
		it.Shard = shard
		it.Refinement = refinement
		m.PerIter = append(m.PerIter, it)
	}
}

// mineComponentShards is the exact strategy: bin-pack attribute-closed
// component groups onto k shards, mine them concurrently, and merge the
// models. Per-shard gains equal the global gains (the groups share no
// attribute value, so no f_c, spell-out, or candidate pair spans shards) and
// DLs are priced canonically, so the result is bit-identical to Mine(g).
func mineComponentShards(g *graph.Graph, opts Options, groups graph.Partition, k int) *Model {
	st := mdl.NewStandardTable(g)
	members := groups.Members()
	bins := graph.PackBins(groups.Sizes(), k)
	shards := make([]*shardRun, 0, k)
	for _, bin := range bins {
		if len(bin) == 0 {
			continue
		}
		n := 0
		for _, gi := range bin {
			n += len(members[gi])
		}
		verts := make([]graph.VertexID, 0, n)
		for _, gi := range bin {
			verts = append(verts, members[gi]...)
		}
		slices.Sort(verts)
		shards = append(shards, &shardRun{verts: verts})
	}
	runShards(g, st, opts, shards, 0)

	m := &Model{Vocab: g.Vocab(), ShardCount: len(shards)}
	var init, final []invdb.LineStat
	for _, sh := range shards {
		init = append(init, sh.init...)
		final = append(final, sh.final...)
	}
	coreCode := shards[0].db.CoreCodeLen // global ST: identical across shards
	bd, bm := invdb.CanonicalDL(st, coreCode, init)
	m.BaselineDL = bd + bm
	fd, fm, cond := invdb.CanonicalSummary(st, coreCode, final)
	m.FinalDL = fd + fm
	m.CondEntropy = cond
	for si, sh := range shards {
		m.Patterns = append(m.Patterns, extractPatterns(sh.db)...)
		appendShardStats(m, sh.stats, si, false)
	}
	sortPatterns(m.Patterns)
	return m
}

// mineEdgeCutShards is the fallback for graphs that do not decompose:
// balanced BFS regions mine concurrently (each vertex's star stays complete
// because shards draw leafsets from the global adjacency — boundary
// vertices need no replication), then the exact global database implied by
// the shard merges is reassembled and a sequential refinement pass finishes
// the search across the cut.
func mineEdgeCutShards(g *graph.Graph, opts Options, k int) *Model {
	st := mdl.NewStandardTable(g)
	shards := make([]*shardRun, 0, k)
	for _, part := range edgeCutParts(g, k) {
		if len(part) == 0 {
			continue
		}
		shards = append(shards, &shardRun{verts: part})
	}
	if len(shards) <= 1 {
		m := MineDB(invdb.FromGraph(g), g.Vocab(), opts)
		m.ShardCount = 1
		return m
	}
	runShards(g, st, opts, shards, 0)

	// Reassemble the global database: every shard line's positions map back
	// through verts to global vertex ids; the parts partition the vertex
	// set, so each global position was generated by exactly one shard and
	// FromLineSet's position unions reconstruct the exact line frequencies.
	var init []invdb.LineStat
	var lines []invdb.RawLine
	for _, sh := range shards {
		init = append(init, sh.init...)
		for c := 0; c < sh.db.NumCoresets(); c++ {
			for _, ls := range sh.db.LeafsetIDsOf(invdb.CoresetID(c)) {
				ln := sh.db.CoresetsOf(ls)[invdb.CoresetID(c)]
				pos := make([]uint32, ln.Pos.Len())
				for i, lv := range ln.Pos {
					pos[i] = uint32(sh.verts[lv]) // verts sorted: order preserved
				}
				lines = append(lines, invdb.RawLine{
					Core: invdb.CoresetID(c),
					Leaf: sh.db.Leafsets().Values(ls),
					Pos:  intset.FromSorted(pos),
				})
			}
		}
	}
	content, corePos := invdb.SingleValueCoresets(g)
	rdb := invdb.FromLineSet(st, content, corePos, lines)

	// Refinement: continue the search sequentially on the exact global
	// state. Cross-shard candidate pairs — and intra-shard pairs whose
	// gains flip under the global frequencies — are found by re-seeding.
	var rst *runStats
	if opts.CollectStats {
		rst = &runStats{}
	}
	preDL := rdb.TotalDL()
	refOpts := opts
	refOpts.Workers = opts.workerCount()
	switch refOpts.Variant {
	case Basic:
		mineBasic(rdb, refOpts, rst)
	default:
		minePartial(rdb, refOpts, rst)
	}
	m := extractModel(rdb, g.Vocab())
	bd, bm := invdb.CanonicalDL(st, rdb.CoreCodeLen, init)
	m.BaselineDL = bd + bm
	m.ShardCount = len(shards)
	m.RefinementGain = preDL - rdb.TotalDL()
	for si, sh := range shards {
		appendShardStats(m, sh.stats, si, false)
	}
	appendShardStats(m, rst, -1, true)
	return m
}

// edgeCutParts splits the vertices into k BFS-grown regions of near-equal
// size. Seeds are the lowest unassigned vertex ids and adjacency lists are
// sorted, so the cut is a pure function of the graph.
func edgeCutParts(g *graph.Graph, k int) [][]graph.VertexID {
	n := g.NumVertices()
	target := (n + k - 1) / k
	parts := make([][]graph.VertexID, k)
	assigned := make([]bool, n)
	cur := 0
	queue := make([]graph.VertexID, 0, n)
	for seed := 0; seed < n; seed++ {
		if assigned[seed] {
			continue
		}
		assigned[seed] = true
		queue = append(queue[:0], graph.VertexID(seed))
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			if len(parts[cur]) >= target && cur < k-1 {
				cur++
			}
			parts[cur] = append(parts[cur], v)
			for _, u := range g.Neighbors(v) {
				if !assigned[u] {
					assigned[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	for i := range parts {
		slices.Sort(parts[i])
	}
	return parts
}
