package cspm

import (
	"reflect"
	"testing"

	"cspm/internal/dataset"
	"cspm/internal/graph"
	"cspm/internal/shardcache"
)

// TestCachedPoisonThenInvalidate pins both halves of the trust model: the
// cache is trusted verbatim (an entry tampered with under a live key DOES
// change the mined model — that is what makes it a cache, not a hint), and
// Remove is a sufficient invalidation (after dropping the poisoned key the
// re-mine is bit-identical to the uncached run again).
func TestCachedPoisonThenInvalidate(t *testing.T) {
	g := dataset.Islands(dataset.IslandsConfig{
		Seed: 7, Islands: 4, MinNodes: 20, MaxNodes: 50,
		AttrsPerIsland: 8, ExtraEdges: 1.0, AttrsPerNode: 3,
	})
	opts := Options{CollectStats: true}
	want := MineWithOptions(g, opts)

	cache := shardcache.New(0)
	MineShardedCached(g, opts, cache)

	groups := graph.AttrClosedComponents(g)
	fps := groups.Fingerprints(g)
	global := graph.GlobalFingerprint(g)
	search := searchFingerprint(opts)
	k0 := shardcache.Key{Component: fps[0], Global: global, Search: search}
	k1 := shardcache.Key{Component: fps[1], Global: global, Search: search}
	e1, ok := cache.Get(k1)
	if !ok {
		t.Fatal("warm cache missing group 1")
	}
	// Poison: file group 1's result under group 0's key.
	cache.Put(k0, e1)

	poisoned := MineShardedCached(g, opts, cache)
	if poisoned.CacheMisses != 0 {
		t.Fatalf("poisoned run re-mined %d groups; the poison was not consulted", poisoned.CacheMisses)
	}
	if reflect.DeepEqual(poisoned.Patterns, want.Patterns) && poisoned.FinalDL == want.FinalDL {
		t.Fatal("poisoned entry did not influence the model; cache is not actually being replayed")
	}

	// Invalidate the poisoned key: the next run re-mines exactly that group
	// and the model is bit-identical to Mine(g) again.
	if !cache.Remove(k0) {
		t.Fatal("Remove found nothing under the poisoned key")
	}
	healed := MineShardedCached(g, opts, cache)
	if healed.CacheMisses != 1 {
		t.Fatalf("healed run re-mined %d groups, want exactly the invalidated one", healed.CacheMisses)
	}
	if healed.BaselineDL != want.BaselineDL || healed.FinalDL != want.FinalDL ||
		healed.CondEntropy != want.CondEntropy || healed.Iterations != want.Iterations ||
		!reflect.DeepEqual(healed.Patterns, want.Patterns) {
		t.Fatal("model after invalidation is not bit-identical to Mine(g)")
	}
}

// TestCachedEvictionCounter pins Model.CacheEvictions: a capacity-bounded
// cache smaller than the group count must evict during the run's stores.
func TestCachedEvictionCounter(t *testing.T) {
	g := dataset.Islands(dataset.IslandsConfig{
		Seed: 5, Islands: 5, MinNodes: 10, MaxNodes: 20,
		AttrsPerIsland: 6, ExtraEdges: 1.0, AttrsPerNode: 2,
	})
	cache := shardcache.New(2)
	m := MineShardedCached(g, Options{}, cache)
	if m.CacheEvictions == 0 {
		t.Fatalf("5 groups through a 2-entry cache evicted nothing: %+v", cache.Stats())
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d entries, capacity 2", cache.Len())
	}
}

// TestCachedStatsPropagation pins the PerIter plumbing: fresh groups carry
// per-iteration stats when requested, replayed groups contribute none, and
// disabling CollectStats suppresses PerIter without losing merge counts.
func TestCachedStatsPropagation(t *testing.T) {
	g := dataset.Islands(dataset.IslandsConfig{
		Seed: 2, Islands: 3, MinNodes: 20, MaxNodes: 40,
		AttrsPerIsland: 8, ExtraEdges: 1.2, AttrsPerNode: 3,
	})
	want := MineWithOptions(g, Options{CollectStats: true})

	cache := shardcache.New(0)
	cold := MineShardedCached(g, Options{CollectStats: true}, cache)
	if len(cold.PerIter) == 0 || cold.Iterations != want.Iterations {
		t.Fatalf("cold run stats: %d periter, %d iterations (want %d)",
			len(cold.PerIter), cold.Iterations, want.Iterations)
	}
	warm := MineShardedCached(g, Options{CollectStats: true}, cache)
	if len(warm.PerIter) != 0 {
		t.Fatalf("warm replay fabricated %d per-iteration stats", len(warm.PerIter))
	}
	if warm.Iterations != want.Iterations || warm.GainEvals != cold.GainEvals {
		t.Fatalf("warm replay lost diagnostics: iters %d (want %d), evals %d (want %d)",
			warm.Iterations, want.Iterations, warm.GainEvals, cold.GainEvals)
	}

	// Stats off: no PerIter even for fresh runs, but counts still recorded.
	quiet := MineShardedCached(g, Options{}, shardcache.New(0))
	if len(quiet.PerIter) != 0 {
		t.Fatalf("CollectStats=false produced %d per-iteration stats", len(quiet.PerIter))
	}
	if quiet.Iterations != want.Iterations {
		t.Fatalf("CollectStats=false lost the merge count: %d want %d", quiet.Iterations, want.Iterations)
	}
}

// TestCachedOptionsKeying pins that the search options are part of the
// cache key: entries mined under one variant, iteration cap, or ablation
// must never replay into a run with different options (Basic and Partial
// provably diverge on some graphs, and a capped run stores truncated
// results).
func TestCachedOptionsKeying(t *testing.T) {
	g := dataset.Islands(dataset.IslandsConfig{
		Seed: 11, Islands: 3, MinNodes: 20, MaxNodes: 40,
		AttrsPerIsland: 8, ExtraEdges: 1.2, AttrsPerNode: 3,
	})
	pairs := [][2]Options{
		{{Variant: Basic}, {Variant: Partial}},
		{{MaxIterations: 2}, {}},
		{{DisableModelCost: true}, {}},
	}
	for _, p := range pairs {
		cache := shardcache.New(0)
		MineShardedCached(g, p[0], cache)
		m := MineShardedCached(g, p[1], cache)
		if m.CacheHits != 0 {
			t.Errorf("options %+v replayed %d groups mined under %+v", p[1], m.CacheHits, p[0])
		}
		// Equal options must still hit, and the second run of p[1] must be
		// bit-identical to its uncached twin.
		warm := MineShardedCached(g, p[1], cache)
		if warm.CacheMisses != 0 {
			t.Errorf("options %+v missed its own entries", p[1])
		}
		want := MineWithOptions(g, p[1])
		if warm.FinalDL != want.FinalDL || !reflect.DeepEqual(warm.Patterns, want.Patterns) {
			t.Errorf("options %+v: cached model diverged from MineWithOptions", p[1])
		}
	}
}

// TestMineShardedCachedValidates mirrors TestMineShardedValidates for the
// cached entry point.
func TestMineShardedCachedValidates(t *testing.T) {
	g := dataset.Islands(dataset.DefaultIslands())
	for _, opts := range []Options{
		{Shards: -1},
		{Workers: -1},
		{ShardStrategy: ShardStrategy(99)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MineShardedCached accepted invalid %+v", opts)
				}
			}()
			MineShardedCached(g, opts, shardcache.New(0))
		}()
	}
}
