package cspm

import (
	"cspm/internal/graph"
	"cspm/internal/invdb"
)

// Stepper exposes the CSPM-Partial search one merge at a time, for
// debugging, visualisation, and anytime mining (stop whenever the model is
// good enough — every prefix of the merge sequence is a valid lossless
// model). Construct with NewStepper, call Step until it returns false, and
// read Snapshot for the current model at any point.
type Stepper struct {
	db    *invdb.DB
	vocab *graph.Vocab
	opts  Options

	cands  *candidateSet
	rd     rdict
	merges int
	doneC  bool
}

// NewStepper builds the inverted database and seeds the candidate set.
func NewStepper(g *graph.Graph, opts Options) *Stepper {
	db := invdb.FromGraph(g)
	s := &Stepper{db: db, vocab: g.Vocab(), opts: opts, cands: newCandidateSet(), rd: make(rdict)}
	pairs := collectCoOccurringPairs(db)
	gains := evalPairs(db, opts, pairs)
	for i, k := range pairs {
		if g := gains[i]; g > 0 {
			x, y := unpackPair(k)
			s.cands.Set(x, y, g)
			s.rd.add(x, y)
		}
	}
	return s
}

// Step applies the next best merge. It returns the realised merge result
// and true, or a zero result and false when nothing compresses any more.
func (s *Stepper) Step() (StepResult, bool) {
	if s.doneC {
		return StepResult{}, false
	}
	for {
		x, y, _, ok := s.cands.PopMax()
		if !ok {
			s.doneC = true
			return StepResult{}, false
		}
		g := evalGain(s.db, s.opts, x, y)
		if g <= 0 {
			s.rd.removePair(x, y)
			continue
		}
		if top, live := s.cands.PeekGain(); live && g < top-1e-12 {
			s.cands.Set(x, y, g)
			continue
		}
		s.rd.removePair(x, y)
		res := s.db.ApplyMerge(x, y)
		if len(res.Shared) == 0 {
			continue
		}
		for _, t := range res.Total {
			s.rd.removeLeafset(t, s.cands)
		}
		if len(s.db.CoresetsOf(res.New)) > 0 {
			for _, rel := range coOccurring(s.db, res.New) {
				if g := evalGain(s.db, s.opts, rel, res.New); g > 0 {
					s.cands.Set(rel, res.New, g)
					s.rd.add(rel, res.New)
				}
			}
		}
		for _, p := range res.Part {
			if p == res.New || len(s.db.CoresetsOf(p)) == 0 {
				continue
			}
			for _, rel := range coOccurring(s.db, p) {
				if rel == res.New {
					continue
				}
				if g := evalGain(s.db, s.opts, p, rel); g > 0 {
					s.cands.Set(p, rel, g)
					s.rd.add(p, rel)
				} else {
					s.cands.Remove(p, rel)
					s.rd.removePair(p, rel)
				}
			}
		}
		s.merges++
		out := StepResult{
			Merges:  s.merges,
			Gain:    res.Gain,
			TotalDL: s.db.TotalDL(),
		}
		out.NewLeafset = append(out.NewLeafset, s.db.Leafsets().Values(res.New)...)
		return out, true
	}
}

// StepResult describes one applied merge.
type StepResult struct {
	Merges     int            // merges applied so far
	Gain       float64        // DL reduction of this merge
	TotalDL    float64        // DL after the merge
	NewLeafset []graph.AttrID // content of the merged leafset
}

// Done reports whether the search is exhausted.
func (s *Stepper) Done() bool { return s.doneC }

// TotalDL returns the current description length.
func (s *Stepper) TotalDL() float64 { return s.db.TotalDL() }

// BaselineDL returns the pre-merge description length.
func (s *Stepper) BaselineDL() float64 { return s.db.BaselineDL() }

// Snapshot extracts the current model (valid after any number of steps).
func (s *Stepper) Snapshot() *Model {
	m := extractModel(s.db, s.vocab)
	m.BaselineDL = s.db.BaselineDL()
	m.FinalDL = s.db.TotalDL()
	m.Iterations = s.merges
	return m
}
