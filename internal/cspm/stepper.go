package cspm

import (
	"cspm/internal/graph"
	"cspm/internal/invdb"
)

// Stepper exposes the CSPM-Partial search one merge at a time, for
// debugging, visualisation, and anytime mining (stop whenever the model is
// good enough — every prefix of the merge sequence is a valid lossless
// model). Construct with NewStepper, call Step until it returns false, and
// read Snapshot for the current model at any point. Step applies exactly the
// merges MineWithOptions would, in the same order.
type Stepper struct {
	db    *invdb.DB
	vocab *graph.Vocab
	opts  Options

	baseStats []invdb.LineStat // initial lines, for canonical BaselineDL
	state     *searchState
	merges    int
	doneC     bool
}

// NewStepper builds the inverted database and seeds the candidate set. It
// panics if opts fails Validate.
func NewStepper(g *graph.Graph, opts Options) *Stepper {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	db := invdb.FromGraph(g)
	s := &Stepper{db: db, vocab: g.Vocab(), opts: opts, state: newSearchState()}
	s.baseStats = db.AppendLineStats(nil)
	s.state.seed(db, opts)
	return s
}

// Step applies the next best merge. It returns the realised merge result
// and true, or a zero result and false when nothing compresses any more.
func (s *Stepper) Step() (StepResult, bool) {
	if s.doneC {
		return StepResult{}, false
	}
	for {
		x, y, _, ok := s.state.cands.PopMax()
		if !ok {
			s.doneC = true
			return StepResult{}, false
		}
		g := evalGain(s.db, s.opts, x, y)
		if g <= 0 {
			s.state.rd.removePair(x, y)
			continue
		}
		if top, live := s.state.cands.PeekGain(); live && g < top-1e-12 {
			s.state.cands.Set(x, y, g)
			continue
		}
		s.state.rd.removePair(x, y)
		res := s.db.ApplyMerge(x, y)
		if len(res.Shared) == 0 {
			continue
		}
		s.state.refresh(s.db, s.opts, res, nil)
		s.merges++
		out := StepResult{
			Merges:  s.merges,
			Gain:    res.Gain,
			TotalDL: s.db.TotalDL(),
		}
		out.NewLeafset = append(out.NewLeafset, s.db.Leafsets().Values(res.New)...)
		return out, true
	}
}

// StepResult describes one applied merge.
type StepResult struct {
	Merges     int            // merges applied so far
	Gain       float64        // DL reduction of this merge
	TotalDL    float64        // DL after the merge
	NewLeafset []graph.AttrID // content of the merged leafset
}

// Done reports whether the search is exhausted.
func (s *Stepper) Done() bool { return s.doneC }

// TotalDL returns the current description length from the search's
// incremental accumulators. It is a live diagnostic of the running search:
// equal to the canonical Model DLs as a real number but not necessarily in
// the last float bits — compare against Snapshot()/Mine models through
// Snapshot, not this accessor.
func (s *Stepper) TotalDL() float64 { return s.db.TotalDL() }

// BaselineDL returns the pre-merge description length from the incremental
// accumulators. Same caveat as TotalDL: a search-internal diagnostic, not
// bit-comparable to Model.BaselineDL.
func (s *Stepper) BaselineDL() float64 { return s.db.BaselineDL() }

// Snapshot extracts the current model (valid after any number of steps).
// Like MineDB, it prices BaselineDL and FinalDL canonically, so a snapshot
// taken after the search exhausts is bit-identical to MineWithOptions.
func (s *Stepper) Snapshot() *Model {
	m := extractModel(s.db, s.vocab)
	bd, bm := invdb.CanonicalDL(s.db.StandardTable(), s.db.CoreCodeLen, s.baseStats)
	m.BaselineDL = bd + bm
	m.Iterations = s.merges
	return m
}
