package cspm

import (
	"fmt"
	"runtime"
	"slices"
	"sync"

	"cspm/internal/epoch"
	"cspm/internal/graph"
	"cspm/internal/invdb"
)

// Variant selects the search strategy. Both produce compressing a-star
// models; Partial is the optimised algorithm evaluated in the paper (§V).
type Variant int

const (
	// Partial is CSPM-Partial (Algorithms 3–4): after each merge only the
	// gains related to the merged pair are refreshed.
	Partial Variant = iota
	// Basic is CSPM-Basic (Algorithms 1–2): every iteration regenerates the
	// full candidate list.
	Basic
)

func (v Variant) String() string {
	if v == Basic {
		return "CSPM-Basic"
	}
	return "CSPM-Partial"
}

// Options configures a mining run. CSPM is parameter-free: the zero value
// (Partial variant, single-value coresets, no iteration cap, gain evaluation
// across all cores) reproduces the paper's default behaviour, and the
// remaining knobs exist for experiments and safety rails, not for result
// tuning.
type Options struct {
	Variant Variant
	// MaxIterations caps merge iterations (0 = unlimited). Used only by
	// tests and benchmarks that need bounded runs.
	MaxIterations int
	// CollectStats enables per-iteration gain-update bookkeeping (Fig. 5).
	// It is cheap and on by default in Mine.
	CollectStats bool
	// DisableModelCost drops the L(M) term from merge gains, leaving the
	// pure Eq. 9 data gain. Exposed for the ablation benchmark; the default
	// (false) is the documented reconstruction.
	DisableModelCost bool
	// Workers parallelises gain evaluation across goroutines (the paper's
	// future-work item 3, at shared-memory scale). Candidate gains are pure
	// reads of the inverted database — each worker owns an EvalScratch
	// arena — so evaluation is embarrassingly parallel; merges stay
	// sequential. 0 (the default) uses all cores; 1 forces serial
	// evaluation; negative values are rejected by Validate. Results are
	// bit-identical regardless of the worker count. MineSharded treats
	// Workers as the TOTAL budget and splits it across shards.
	Workers int
	// Shards is the shard count for MineSharded: 0 (the default) mines one
	// shard per independent vertex group, capped at GOMAXPROCS; 1
	// degenerates to the unsharded search; negative values are rejected by
	// Validate. Mine, MineWithOptions and MineDB ignore it. Under the
	// component strategy results are identical for every shard count; under
	// the edge-cut fallback the cut — and so the mined model — depends on
	// the count, so pin Shards explicitly when edge-cut output must be
	// reproducible across machines (0 resolves to GOMAXPROCS there).
	Shards int
	// ShardStrategy selects how MineSharded partitions the graph; see the
	// ShardStrategy constants. Ignored outside MineSharded.
	ShardStrategy ShardStrategy
}

// Validate sanity-checks options.
func (o Options) Validate() error {
	if o.MaxIterations < 0 {
		return fmt.Errorf("cspm: MaxIterations must be >= 0, got %d", o.MaxIterations)
	}
	if o.Workers < 0 {
		return fmt.Errorf("cspm: Workers must be >= 0, got %d", o.Workers)
	}
	if o.Shards < 0 {
		return fmt.Errorf("cspm: Shards must be >= 0, got %d", o.Shards)
	}
	if o.ShardStrategy < ShardAuto || o.ShardStrategy > ShardEdgeCut {
		return fmt.Errorf("cspm: unknown ShardStrategy %d", o.ShardStrategy)
	}
	return nil
}

// workerCount resolves Options.Workers: 0 means one evaluator per core.
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Mine runs CSPM on an attributed graph with single-value coresets and
// default options (CSPM-Partial). This is the parameter-free entry point.
func Mine(g *graph.Graph) *Model {
	return MineWithOptions(g, Options{CollectStats: true})
}

// MineWithOptions runs CSPM on g with explicit options. It panics if opts
// fails Validate.
func MineWithOptions(g *graph.Graph, opts Options) *Model {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	db := invdb.FromGraph(g)
	return MineDB(db, g.Vocab(), opts)
}

// MineDB runs the merge search on a prepared inverted database. The caller
// supplies the vocabulary used for rendering patterns (nil is allowed when
// patterns are consumed as AttrIDs only). It panics if opts fails Validate.
//
// The reported BaselineDL and FinalDL are computed through the canonical
// summation order (invdb.CanonicalDL): bit-identical for any search that
// reaches the same final database, which is what lets MineSharded promise
// bit-identical models (see DESIGN.md "Sharded mining").
func MineDB(db *invdb.DB, vocab *graph.Vocab, opts Options) *Model {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	baseStats := db.AppendLineStats(nil)
	var st *runStats
	if opts.CollectStats {
		st = &runStats{}
	}
	switch opts.Variant {
	case Basic:
		mineBasic(db, opts, st)
	default:
		minePartial(db, opts, st)
	}
	m := extractModel(db, vocab)
	bd, bm := invdb.CanonicalDL(db.StandardTable(), db.CoreCodeLen, baseStats)
	m.BaselineDL = bd + bm
	if st != nil {
		m.Iterations = st.iterations
		m.GainEvals = st.gainEvals
		m.PerIter = st.perIter
	}
	return m
}

// runStats accumulates the diagnostics surfaced on Model.
type runStats struct {
	iterations int
	gainEvals  int
	perIter    []IterationStat
}

func (st *runStats) record(db *invdb.DB, updates, possible int, gain float64) {
	if st == nil {
		return
	}
	st.iterations++
	st.gainEvals += updates
	ratio := 0.0
	if possible > 0 {
		ratio = float64(updates) / float64(possible)
	}
	st.perIter = append(st.perIter, IterationStat{
		Iteration:     st.iterations,
		GainUpdates:   updates,
		PossiblePairs: possible,
		UpdateRatio:   ratio,
		Gain:          gain,
		TotalDL:       db.TotalDL(),
	})
}

// evalGain evaluates a pair's gain honouring the ablation switch, using the
// DB-owned scratch (serial paths only).
func evalGain(db *invdb.DB, opts Options, x, y invdb.LeafsetID) float64 {
	return gainOf(db.EvalMerge(x, y), opts)
}

func gainOf(ev invdb.MergeEval, opts Options) float64 {
	if ev.CoOccurs == 0 {
		return 0
	}
	if opts.DisableModelCost {
		return ev.DataGain
	}
	return ev.Gain
}

// pairEnum holds the reusable state of co-occurring pair enumeration: an
// epoch-stamped visited set keyed by LeafsetID replaces the per-call hash
// set of every co-occurring pair, so enumeration allocates nothing in
// steady state. A pairEnum belongs to one search; it is not safe for
// concurrent use.
type pairEnum struct {
	seen   epoch.Set
	buf    []invdb.LeafsetID
	active []invdb.LeafsetID
}

// forEachCoOccurringPair invokes fn once per unordered pair of leafsets that
// share at least one coreset — the only pairs that can ever have positive
// gain (paper §V). Pairs are emitted in canonical ascending (x, y) order
// with x < y, so enumeration order is a pure function of the database.
func (pe *pairEnum) forEachCoOccurringPair(db *invdb.DB, fn func(x, y invdb.LeafsetID)) {
	pe.active = db.AppendActiveLeafsets(pe.active)
	active := pe.active
	slices.Sort(active)
	pe.seen.Grow(db.Leafsets().Size())
	for _, x := range active {
		partners := pe.partnersOf(db, x, func(y invdb.LeafsetID) bool { return y > x })
		for _, y := range partners {
			fn(x, y)
		}
	}
}

// coOccurring returns, in ascending order, the leafsets sharing at least
// one coreset with ls. The returned slice is scratch owned by pe: callers
// must consume it before the next pairEnum call.
func (pe *pairEnum) coOccurring(db *invdb.DB, ls invdb.LeafsetID) []invdb.LeafsetID {
	pe.seen.Grow(db.Leafsets().Size())
	return pe.partnersOf(db, ls, func(y invdb.LeafsetID) bool { return y != ls })
}

// partnersOf collects into pe.buf the distinct leafsets that share a coreset
// with ls and satisfy keep, sorted ascending.
func (pe *pairEnum) partnersOf(db *invdb.DB, ls invdb.LeafsetID, keep func(invdb.LeafsetID) bool) []invdb.LeafsetID {
	pe.seen.Bump()
	out := pe.buf[:0]
	for _, e := range db.CoresetIDsOf(ls) {
		for _, y := range db.LeafsetIDsOf(e) {
			if !keep(y) || !pe.seen.Mark(int(y)) {
				continue
			}
			out = append(out, y)
		}
	}
	slices.Sort(out)
	pe.buf = out
	return out
}

// parallelMinBatch is the pair count below which evalPairs stays serial:
// tiny refresh batches are cheaper on one goroutine than across a pool.
const parallelMinBatch = 256

// evalState bundles the reusable gain-evaluation buffers of one search: the
// pair enumerator, the batch and gain slices, and one persistent EvalScratch
// arena per worker, so repeated batches allocate nothing once warmed up.
type evalState struct {
	pe        pairEnum
	batch     []uint64
	gains     []float64
	scratches []*invdb.EvalScratch
}

// evalPairs computes gains for all pairs into es.gains (reusing its
// capacity), optionally across workers. The result is index-aligned with
// pairs and every gain is a pure function of (db, pair), so parallelism
// cannot change any downstream decision.
func (es *evalState) evalPairs(db *invdb.DB, opts Options, pairs []uint64) []float64 {
	gains := es.gains
	if cap(gains) < len(pairs) {
		gains = make([]float64, len(pairs))
	} else {
		gains = gains[:len(pairs)]
	}
	es.gains = gains
	workers := opts.workerCount()
	if workers > len(pairs)/parallelMinBatch+1 {
		workers = len(pairs)/parallelMinBatch + 1
	}
	if workers <= 1 {
		for i, k := range pairs {
			x, y := unpackPair(k)
			gains[i] = evalGain(db, opts, x, y)
		}
		return gains
	}
	for len(es.scratches) < workers {
		es.scratches = append(es.scratches, invdb.NewEvalScratch())
	}
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(pairs) {
			break
		}
		hi := min(lo+chunk, len(pairs))
		wg.Add(1)
		// Worker-owned persistent arena; the DB is a pure read here.
		go func(lo, hi int, sc *invdb.EvalScratch) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				x, y := unpackPair(pairs[i])
				gains[i] = gainOf(db.EvalMergeScratch(x, y, sc), opts)
			}
		}(lo, hi, es.scratches[w])
	}
	wg.Wait()
	return gains
}

// mineBasic is Algorithm 1: regenerate all candidates each iteration, merge
// the best pair, repeat until nothing compresses. Ties on gain resolve to
// the pair earliest in canonical enumeration order (smallest packed key).
func mineBasic(db *invdb.DB, opts Options, st *runStats) {
	es := &evalState{}
	for iter := 0; opts.MaxIterations == 0 || iter < opts.MaxIterations; iter++ {
		n := db.NumActiveLeafsets()
		possible := n * (n - 1) / 2
		es.batch = es.batch[:0]
		es.pe.forEachCoOccurringPair(db, func(x, y invdb.LeafsetID) {
			es.batch = append(es.batch, pairKey(x, y))
		})
		gains := es.evalPairs(db, opts, es.batch)
		var bestX, bestY invdb.LeafsetID
		bestGain := 0.0
		for i, g := range gains {
			if g > bestGain {
				bestGain = g
				bestX, bestY = unpackPair(es.batch[i])
			}
		}
		if bestGain <= 0 {
			return
		}
		res := db.ApplyMerge(bestX, bestY)
		st.record(db, len(es.batch), possible, res.Gain)
	}
}

// rdict is the related-leafset dictionary of CSPM-Partial: rdict[x] holds
// every leafset that currently forms a positive-gain candidate with x.
type rdict map[invdb.LeafsetID]map[invdb.LeafsetID]struct{}

func (r rdict) add(a, b invdb.LeafsetID) {
	if r[a] == nil {
		r[a] = make(map[invdb.LeafsetID]struct{})
	}
	r[a][b] = struct{}{}
	if r[b] == nil {
		r[b] = make(map[invdb.LeafsetID]struct{})
	}
	r[b][a] = struct{}{}
}

func (r rdict) removePair(a, b invdb.LeafsetID) {
	if m := r[a]; m != nil {
		delete(m, b)
		if len(m) == 0 {
			delete(r, a)
		}
	}
	if m := r[b]; m != nil {
		delete(m, a)
		if len(m) == 0 {
			delete(r, b)
		}
	}
}

// removeLeafset drops a leafset and all its pairs, clearing candidates too.
func (r rdict) removeLeafset(x invdb.LeafsetID, cs *candidateSet) {
	for rel := range r[x] {
		cs.Remove(x, rel)
		delete(r[rel], x)
		if len(r[rel]) == 0 {
			delete(r, rel)
		}
	}
	delete(r, x)
}

// related returns a sorted snapshot of rdict[x].
func (r rdict) related(x invdb.LeafsetID) []invdb.LeafsetID {
	m := r[x]
	out := make([]invdb.LeafsetID, 0, len(m))
	for rel := range m {
		out = append(out, rel)
	}
	slices.Sort(out)
	return out
}

// searchState bundles the candidate heap, related-leafset dictionary and
// reusable evaluation buffers shared by minePartial and the Stepper.
type searchState struct {
	cands *candidateSet
	rd    rdict
	evalState
}

func newSearchState() *searchState {
	return &searchState{cands: newCandidateSet(), rd: make(rdict)}
}

// seed evaluates every co-occurring pair (in parallel for large databases)
// and enqueues the positive-gain ones (Algorithm 3 line 2).
func (s *searchState) seed(db *invdb.DB, opts Options) {
	s.batch = s.batch[:0]
	s.pe.forEachCoOccurringPair(db, func(x, y invdb.LeafsetID) {
		s.batch = append(s.batch, pairKey(x, y))
	})
	gains := s.evalPairs(db, opts, s.batch)
	for i, k := range s.batch {
		if g := gains[i]; g > 0 {
			x, y := unpackPair(k)
			s.cands.Set(x, y, g)
			s.rd.add(x, y)
		}
	}
}

// refresh applies Algorithm 4's candidate updates after a committed merge,
// batching the step-2 and step-3 gain evaluations through the worker pool.
// note, when non-nil, observes every evaluated pair key (Fig. 5 stats).
func (s *searchState) refresh(db *invdb.DB, opts Options, res invdb.MergeResult, note func(uint64)) {
	// (1) Remove totally merged leafsets and their candidates.
	for _, t := range res.Total {
		s.rd.removeLeafset(t, s.cands)
	}
	// (2) Pairs with the new leafset. Algorithm 4 line 6 draws these from
	// rdict[x] ∩ rdict[y]; we enumerate the leafsets co-occurring with the
	// new pattern instead — a superset of that intersection (positions of
	// the new lines lie inside both parents') that keeps Partial's search
	// aligned with Basic when a parent pair was not itself a positive
	// candidate. §V's sparsity observation still bounds the work: only
	// co-occurring leafsets are touched.
	batch := s.batch[:0]
	if len(db.CoresetsOf(res.New)) > 0 {
		for _, rel := range s.pe.coOccurring(db, res.New) {
			batch = append(batch, pairKey(rel, res.New))
		}
	}
	step2 := len(batch)
	// (3) Pairs whose gain the merge influenced: every pair that touches a
	// partially merged leafset. Its lines shrank, so gains in both
	// directions are possible (a previously useless pair can flip positive
	// when the leftover positions align better); co-occurrence bounds the
	// work exactly as §V observes.
	for _, p := range res.Part {
		if p == res.New || len(db.CoresetsOf(p)) == 0 {
			continue
		}
		for _, rel := range s.pe.coOccurring(db, p) {
			if rel == res.New {
				continue // handled in step 2
			}
			batch = append(batch, pairKey(p, rel))
		}
	}
	s.batch = batch
	gains := s.evalPairs(db, opts, batch)
	for i, k := range batch {
		if note != nil {
			note(k)
		}
		x, y := unpackPair(k)
		if g := gains[i]; g > 0 {
			s.cands.Set(x, y, g)
			s.rd.add(x, y)
		} else if i >= step2 {
			// Step-2 pairs are additions only; step-3 pairs also clear the
			// stale candidate when the gain flipped non-positive.
			s.cands.Remove(x, y)
			s.rd.removePair(x, y)
		}
	}
}

// minePartial is Algorithms 3–4: seed candidates once, then after each merge
// only (1) remove candidates of totally merged leafsets, (2) evaluate the
// new leafset against the leafsets co-occurring with it, and (3) refresh
// pairs touching partially merged leafsets.
func minePartial(db *invdb.DB, opts Options, st *runStats) {
	s := newSearchState()
	s.seed(db, opts)
	merges := 0
	// Distinct pairs whose gain was evaluated since the last committed
	// merge; Fig. 5's update ratio counts each pair once per iteration.
	evaled := make(map[uint64]struct{})
	for opts.MaxIterations == 0 || merges < opts.MaxIterations {
		x, y, _, ok := s.cands.PopMax()
		if !ok {
			return
		}
		n := db.NumActiveLeafsets()
		possible := n * (n - 1) / 2
		// Gains of pairs untouched by a merge can only shrink (their shared
		// coreset frequencies fall), so the stored gain is an upper bound.
		// Re-evaluate lazily on pop and re-queue if another pair now leads —
		// this recovers the exact greedy order without eager refreshes.
		evaled[pairKey(x, y)] = struct{}{}
		g := evalGain(db, opts, x, y)
		if g <= 0 {
			s.rd.removePair(x, y)
			continue
		}
		if top, live := s.cands.PeekGain(); live && g < top-1e-12 {
			s.cands.Set(x, y, g)
			continue
		}
		s.rd.removePair(x, y)
		res := db.ApplyMerge(x, y)
		if len(res.Shared) == 0 {
			st.record(db, len(evaled), possible, 0)
			clear(evaled)
			merges++
			continue
		}
		s.refresh(db, opts, res, func(k uint64) { evaled[k] = struct{}{} })
		st.record(db, len(evaled), possible, res.Gain)
		clear(evaled)
		merges++
	}
}
