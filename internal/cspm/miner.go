package cspm

import (
	"fmt"
	"sort"
	"sync"

	"cspm/internal/graph"
	"cspm/internal/invdb"
)

// Variant selects the search strategy. Both produce compressing a-star
// models; Partial is the optimised algorithm evaluated in the paper (§V).
type Variant int

const (
	// Partial is CSPM-Partial (Algorithms 3–4): after each merge only the
	// gains related to the merged pair are refreshed.
	Partial Variant = iota
	// Basic is CSPM-Basic (Algorithms 1–2): every iteration regenerates the
	// full candidate list.
	Basic
)

func (v Variant) String() string {
	if v == Basic {
		return "CSPM-Basic"
	}
	return "CSPM-Partial"
}

// Options configures a mining run. CSPM is parameter-free: the zero value
// (Partial variant, single-value coresets, no iteration cap) reproduces the
// paper's default behaviour, and the remaining knobs exist for experiments
// and safety rails, not for result tuning.
type Options struct {
	Variant Variant
	// MaxIterations caps merge iterations (0 = unlimited). Used only by
	// tests and benchmarks that need bounded runs.
	MaxIterations int
	// CollectStats enables per-iteration gain-update bookkeeping (Fig. 5).
	// It is cheap and on by default in Mine.
	CollectStats bool
	// DisableModelCost drops the L(M) term from merge gains, leaving the
	// pure Eq. 9 data gain. Exposed for the ablation benchmark; the default
	// (false) is the documented reconstruction.
	DisableModelCost bool
	// Workers parallelises gain evaluation across goroutines (the paper's
	// future-work item 3, at shared-memory scale). Candidate gains are pure
	// reads of the inverted database, so evaluation is embarrassingly
	// parallel; merges stay sequential. 0 or 1 means serial; results are
	// identical either way.
	Workers int
}

// Mine runs CSPM on an attributed graph with single-value coresets and
// default options (CSPM-Partial). This is the parameter-free entry point.
func Mine(g *graph.Graph) *Model {
	return MineWithOptions(g, Options{CollectStats: true})
}

// MineWithOptions runs CSPM on g with explicit options.
func MineWithOptions(g *graph.Graph, opts Options) *Model {
	db := invdb.FromGraph(g)
	return MineDB(db, g.Vocab(), opts)
}

// MineDB runs the merge search on a prepared inverted database. The caller
// supplies the vocabulary used for rendering patterns (nil is allowed when
// patterns are consumed as AttrIDs only).
func MineDB(db *invdb.DB, vocab *graph.Vocab, opts Options) *Model {
	var st *runStats
	if opts.CollectStats {
		st = &runStats{}
	}
	switch opts.Variant {
	case Basic:
		mineBasic(db, opts, st)
	default:
		minePartial(db, opts, st)
	}
	m := extractModel(db, vocab)
	m.BaselineDL = db.BaselineDL()
	m.FinalDL = db.TotalDL()
	if st != nil {
		m.Iterations = st.iterations
		m.GainEvals = st.gainEvals
		m.PerIter = st.perIter
	}
	return m
}

// runStats accumulates the diagnostics surfaced on Model.
type runStats struct {
	iterations int
	gainEvals  int
	perIter    []IterationStat
}

func (st *runStats) record(db *invdb.DB, updates, possible int, gain float64) {
	if st == nil {
		return
	}
	st.iterations++
	st.gainEvals += updates
	ratio := 0.0
	if possible > 0 {
		ratio = float64(updates) / float64(possible)
	}
	st.perIter = append(st.perIter, IterationStat{
		Iteration:     st.iterations,
		GainUpdates:   updates,
		PossiblePairs: possible,
		UpdateRatio:   ratio,
		Gain:          gain,
		TotalDL:       db.TotalDL(),
	})
}

// evalGain evaluates a pair's gain honouring the ablation switch.
func evalGain(db *invdb.DB, opts Options, x, y invdb.LeafsetID) float64 {
	ev := db.EvalMerge(x, y)
	if ev.CoOccurs == 0 {
		return 0
	}
	if opts.DisableModelCost {
		return ev.DataGain
	}
	return ev.Gain
}

// forEachCoOccurringPair invokes fn once per unordered pair of leafsets that
// share at least one coreset — the only pairs that can ever have positive
// gain (paper §V). Iteration order is deterministic.
func forEachCoOccurringPair(db *invdb.DB, fn func(x, y invdb.LeafsetID)) {
	seen := make(map[uint64]struct{})
	for c := 0; c < db.NumCoresets(); c++ {
		lines := db.LinesOf(invdb.CoresetID(c))
		if len(lines) < 2 {
			continue
		}
		ids := make([]invdb.LeafsetID, 0, len(lines))
		for ls := range lines {
			ids = append(ids, ls)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				k := pairKey(ids[i], ids[j])
				if _, ok := seen[k]; ok {
					continue
				}
				seen[k] = struct{}{}
				fn(ids[i], ids[j])
			}
		}
	}
}

// coOccurring returns, in deterministic order, the leafsets sharing at
// least one coreset with ls.
func coOccurring(db *invdb.DB, ls invdb.LeafsetID) []invdb.LeafsetID {
	seen := make(map[invdb.LeafsetID]struct{})
	var out []invdb.LeafsetID
	for e := range db.CoresetsOf(ls) {
		for other := range db.LinesOf(e) {
			if other == ls {
				continue
			}
			if _, ok := seen[other]; !ok {
				seen[other] = struct{}{}
				out = append(out, other)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// collectCoOccurringPairs materialises the co-occurring pairs in the
// deterministic enumeration order.
func collectCoOccurringPairs(db *invdb.DB) []uint64 {
	var out []uint64
	forEachCoOccurringPair(db, func(x, y invdb.LeafsetID) {
		out = append(out, pairKey(x, y))
	})
	return out
}

// evalPairs computes gains for all pairs, optionally across workers. The
// returned slice is index-aligned with pairs, so parallelism cannot change
// any downstream decision.
func evalPairs(db *invdb.DB, opts Options, pairs []uint64) []float64 {
	gains := make([]float64, len(pairs))
	workers := opts.Workers
	if workers <= 1 || len(pairs) < 256 {
		for i, k := range pairs {
			x, y := unpackPair(k)
			gains[i] = evalGain(db, opts, x, y)
		}
		return gains
	}
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(pairs) {
			break
		}
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				x, y := unpackPair(pairs[i])
				gains[i] = evalGain(db, opts, x, y)
			}
		}(lo, hi)
	}
	wg.Wait()
	return gains
}

// mineBasic is Algorithm 1: regenerate all candidates each iteration, merge
// the best pair, repeat until nothing compresses.
func mineBasic(db *invdb.DB, opts Options, st *runStats) {
	for iter := 0; opts.MaxIterations == 0 || iter < opts.MaxIterations; iter++ {
		n := db.NumActiveLeafsets()
		possible := n * (n - 1) / 2
		pairs := collectCoOccurringPairs(db)
		gains := evalPairs(db, opts, pairs)
		var bestX, bestY invdb.LeafsetID
		bestGain := 0.0
		for i, g := range gains {
			if g > bestGain {
				bestGain = g
				bestX, bestY = unpackPair(pairs[i])
			}
		}
		if bestGain <= 0 {
			return
		}
		res := db.ApplyMerge(bestX, bestY)
		st.record(db, len(pairs), possible, res.Gain)
	}
}

// rdict is the related-leafset dictionary of CSPM-Partial: rdict[x] holds
// every leafset that currently forms a positive-gain candidate with x.
type rdict map[invdb.LeafsetID]map[invdb.LeafsetID]struct{}

func (r rdict) add(a, b invdb.LeafsetID) {
	if r[a] == nil {
		r[a] = make(map[invdb.LeafsetID]struct{})
	}
	r[a][b] = struct{}{}
	if r[b] == nil {
		r[b] = make(map[invdb.LeafsetID]struct{})
	}
	r[b][a] = struct{}{}
}

func (r rdict) removePair(a, b invdb.LeafsetID) {
	if m := r[a]; m != nil {
		delete(m, b)
		if len(m) == 0 {
			delete(r, a)
		}
	}
	if m := r[b]; m != nil {
		delete(m, a)
		if len(m) == 0 {
			delete(r, b)
		}
	}
}

// removeLeafset drops a leafset and all its pairs, clearing candidates too.
func (r rdict) removeLeafset(x invdb.LeafsetID, cs *candidateSet) {
	for rel := range r[x] {
		cs.Remove(x, rel)
		delete(r[rel], x)
		if len(r[rel]) == 0 {
			delete(r, rel)
		}
	}
	delete(r, x)
}

// related returns a sorted snapshot of rdict[x].
func (r rdict) related(x invdb.LeafsetID) []invdb.LeafsetID {
	m := r[x]
	out := make([]invdb.LeafsetID, 0, len(m))
	for rel := range m {
		out = append(out, rel)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// minePartial is Algorithms 3–4: seed candidates once, then after each merge
// only (1) remove candidates of totally merged leafsets, (2) evaluate the
// new leafset against the intersection of the merged pair's relations, and
// (3) refresh pairs touching partially merged leafsets.
func minePartial(db *invdb.DB, opts Options, st *runStats) {
	cands := newCandidateSet()
	rd := make(rdict)
	seedPairs := collectCoOccurringPairs(db)
	seedGains := evalPairs(db, opts, seedPairs)
	for i, k := range seedPairs {
		if g := seedGains[i]; g > 0 {
			x, y := unpackPair(k)
			cands.Set(x, y, g)
			rd.add(x, y)
		}
	}
	merges := 0
	// Distinct pairs whose gain was evaluated since the last committed
	// merge; Fig. 5's update ratio counts each pair once per iteration.
	evaled := make(map[uint64]struct{})
	for opts.MaxIterations == 0 || merges < opts.MaxIterations {
		x, y, _, ok := cands.PopMax()
		if !ok {
			return
		}
		n := db.NumActiveLeafsets()
		possible := n * (n - 1) / 2
		// Gains of pairs untouched by a merge can only shrink (their shared
		// coreset frequencies fall), so the stored gain is an upper bound.
		// Re-evaluate lazily on pop and re-queue if another pair now leads —
		// this recovers the exact greedy order without eager refreshes.
		evaled[pairKey(x, y)] = struct{}{}
		g := evalGain(db, opts, x, y)
		if g <= 0 {
			rd.removePair(x, y)
			continue
		}
		if top, live := cands.PeekGain(); live && g < top-1e-12 {
			cands.Set(x, y, g)
			continue
		}
		rd.removePair(x, y)
		res := db.ApplyMerge(x, y)
		if len(res.Shared) == 0 {
			st.record(db, len(evaled), possible, 0)
			evaled = make(map[uint64]struct{})
			merges++
			continue
		}
		// (1) Remove totally merged leafsets and their candidates.
		for _, t := range res.Total {
			rd.removeLeafset(t, cands)
		}
		// (2) Add pairs with the new leafset. Algorithm 4 line 6 draws these
		// from rdict[x] ∩ rdict[y]; we enumerate the leafsets co-occurring
		// with the new pattern instead — a superset of that intersection
		// (positions of the new lines lie inside both parents') that keeps
		// Partial's search aligned with Basic when a parent pair was not
		// itself a positive candidate. §V's sparsity observation still
		// bounds the work: only co-occurring leafsets are touched.
		if len(db.CoresetsOf(res.New)) > 0 {
			for _, rel := range coOccurring(db, res.New) {
				evaled[pairKey(rel, res.New)] = struct{}{}
				if g := evalGain(db, opts, rel, res.New); g > 0 {
					cands.Set(rel, res.New, g)
					rd.add(rel, res.New)
				}
			}
		}
		// (3) Refresh pairs whose gain the merge influenced: every pair that
		// touches a partially merged leafset. Its lines shrank, so gains in
		// both directions are possible (a previously useless pair can flip
		// positive when the leftover positions align better); co-occurrence
		// bounds the work exactly as §V observes.
		for _, p := range res.Part {
			if p == res.New {
				continue
			}
			if len(db.CoresetsOf(p)) == 0 {
				continue
			}
			for _, rel := range coOccurring(db, p) {
				if rel == res.New {
					continue // handled in step 2
				}
				evaled[pairKey(p, rel)] = struct{}{}
				if g := evalGain(db, opts, p, rel); g > 0 {
					cands.Set(p, rel, g)
					rd.add(p, rel)
				} else {
					cands.Remove(p, rel)
					rd.removePair(p, rel)
				}
			}
		}
		st.record(db, len(evaled), possible, res.Gain)
		evaled = make(map[uint64]struct{})
		merges++
	}
}

// Validate sanity-checks options.
func (o Options) Validate() error {
	if o.MaxIterations < 0 {
		return fmt.Errorf("cspm: MaxIterations must be >= 0, got %d", o.MaxIterations)
	}
	return nil
}
