package cspm

import (
	"crypto/sha256"
	"encoding/binary"
	"runtime"
	"time"

	"cspm/internal/graph"
	"cspm/internal/invdb"
	"cspm/internal/mdl"
	"cspm/internal/shardcache"
)

// StageObserver receives the wall-clock duration of each internal phase of a
// cached mine: "fingerprint" (component fingerprinting), "diff" (cache
// lookup splitting clean from dirty groups), "shard_mine" (mining the dirty
// shards) and "merge" (exact model merge). The serving layer's re-mine
// profiler plugs in here; a plain function type (not an Options field) keeps
// Options gob-encodable for the shardrpc wire.
type StageObserver func(stage string, d time.Duration)

func (f StageObserver) observe(stage string, since time.Time) {
	if f != nil {
		f(stage, time.Since(since))
	}
}

// cachedSearchVersion stamps the search fingerprint with the mining
// algorithm's result format. Bump it whenever a change makes the search
// produce different results for the same (graph, options) — a gain-formula
// fix, a tie-break change, a new Options field that shapes results — so
// persistent caches written by older binaries invalidate instead of
// replaying stale models.
const cachedSearchVersion = 1

// searchFingerprint digests the options that change what a shard search
// produces — the variant, the per-shard iteration cap, and the model-cost
// ablation — so results mined under one configuration are never replayed
// into another. Workers and Shards only change scheduling (results are
// bit-identical by the determinism contract) and CollectStats only controls
// diagnostics, so they deliberately stay out of the key.
func searchFingerprint(opts Options) graph.Fingerprint {
	var buf [18]byte
	buf[0] = cachedSearchVersion
	binary.LittleEndian.PutUint64(buf[1:], uint64(opts.Variant))
	binary.LittleEndian.PutUint64(buf[9:], uint64(opts.MaxIterations))
	if opts.DisableModelCost {
		buf[17] = 1
	}
	return sha256.Sum256(buf[:])
}

// MineShardedCached mines g by attribute-closed component groups like
// MineSharded's component strategy, but consults cache before mining: groups
// whose fingerprint (together with the graph's global attribute context) has
// a cached shard result are replayed from the cache, and only dirty groups
// are re-mined. The merged model is bit-identical to Mine(g) whether every
// group, no group, or any subset came from the cache, because patterns and
// all reported description lengths are pure functions of the per-group line
// multisets the cache stores (see DESIGN.md "Shard-result cache").
//
// Options.Shards bounds how many dirty groups mine concurrently (0 = all
// cores) and Options.Workers is the total evaluation budget, exactly as in
// MineSharded. Options.MaxIterations caps each group's merges independently
// — like MineSharded and unlike Mine's single global cap, so capped runs
// match MineSharded, not Mine. Options.ShardStrategy is ignored: cached
// mining is always component-grained (the edge-cut strategy has no stable
// per-group unit to key). A nil cache mines through a private ephemeral
// cache, so the result contract is identical — only the reuse is lost. It
// panics if opts fails Validate.
func MineShardedCached(g *graph.Graph, opts Options, cache *shardcache.Cache) *Model {
	return MineShardedCachedObserved(g, opts, cache, nil)
}

// MineShardedCachedObserved is MineShardedCached with per-phase timing
// reported to observe (nil = no observation; the mining result is identical
// either way).
func MineShardedCachedObserved(g *graph.Graph, opts Options, cache *shardcache.Cache, observe StageObserver) *Model {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	if cache == nil {
		cache = shardcache.New(0)
	}
	t := time.Now()
	groups := graph.AttrClosedComponents(g)
	fps := groups.Fingerprints(g)
	global := graph.GlobalFingerprint(g)
	search := searchFingerprint(opts)
	observe.observe("fingerprint", t)
	st := mdl.NewStandardTable(g)
	members := groups.Members()

	t = time.Now()
	entries := make([]*shardcache.Entry, groups.Count)
	fresh := make([]bool, groups.Count)
	var dirty []int
	for gi := 0; gi < groups.Count; gi++ {
		if e, ok := cache.Get(shardcache.Key{Component: fps[gi], Global: global, Search: search}); ok {
			entries[gi] = e
		} else {
			fresh[gi] = true
			dirty = append(dirty, gi)
		}
	}
	observe.observe("diff", t)

	evBefore := cache.Stats().Evictions
	shards := make([]*shardRun, len(dirty))
	t = time.Now()
	if len(dirty) > 0 {
		// Entries must always carry the run diagnostics (a warm replay still
		// reports Iterations), so dirty runs collect stats unconditionally;
		// PerIter is surfaced only when the caller asked.
		runOpts := opts
		runOpts.CollectStats = true
		for i, gi := range dirty {
			shards[i] = &shardRun{verts: members[gi]}
		}
		k := opts.Shards
		if k == 0 {
			k = runtime.GOMAXPROCS(0)
		}
		runShards(g, st, runOpts, shards, k)
		for i, gi := range dirty {
			sh := shards[i]
			e := &shardcache.Entry{
				Init: sh.init, Final: sh.final,
				Iterations: sh.stats.iterations, GainEvals: sh.stats.gainEvals,
			}
			// A failed disk write only loses persistence (the in-memory copy
			// is already stored); mining correctness is unaffected.
			_ = cache.Put(shardcache.Key{Component: fps[gi], Global: global, Search: search}, e)
			entries[gi] = e
		}
	}
	observe.observe("shard_mine", t)

	t = time.Now()
	m := &Model{Vocab: g.Vocab(), ShardCount: len(dirty)}
	m.CacheHits = groups.Count - len(dirty)
	m.CacheMisses = len(dirty)
	m.CacheEvictions = int(cache.Stats().Evictions - evBefore)
	for gi, e := range entries {
		if !fresh[gi] {
			// Replayed groups contribute their recorded diagnostics; fresh
			// runs contribute theirs through appendShardStats below.
			m.Iterations += e.Iterations
			m.GainEvals += e.GainEvals
		}
	}
	for i := range shards {
		if !opts.CollectStats {
			shards[i].stats.perIter = nil
		}
		appendShardStats(m, shards[i].stats, i, false)
	}
	mergeEntryStats(m, st, entries)
	observe.observe("merge", t)
	return m
}

// mergeEntryStats folds one entry per component group into m: canonical
// baseline/final DLs, conditional entropy and the pattern list, all pure
// functions of the per-group line multisets. This is the exact-merge tail
// shared by the cached and distributed miners — it cannot tell (and need
// not know) whether an entry came from a fresh local run, a cache replay,
// or a remote worker's blob.
func mergeEntryStats(m *Model, st *mdl.StandardTable, entries []*shardcache.Entry) {
	var init, final []invdb.LineStat
	for _, e := range entries {
		init = append(init, e.Init...)
		final = append(final, e.Final...)
	}
	coreCode := func(c invdb.CoresetID) float64 { return st.Len(graph.AttrID(c)) }
	bd, bm := invdb.CanonicalDL(st, coreCode, init)
	m.BaselineDL = bd + bm
	fd, fm, cond := invdb.CanonicalSummary(st, coreCode, final)
	m.FinalDL = fd + fm
	m.CondEntropy = cond
	m.Patterns = patternsFromStats(st, final)
	sortPatterns(m.Patterns)
}

// patternsFromStats derives the a-star pattern list from a final line
// multiset — the cache-replay twin of extractPatterns. Under single-value
// coresets every AStar field is a pure function of the stats: FC is the sum
// of the core's line frequencies, the core code length is the standard-table
// length of its one value, and the conditional code length follows from
// (fL, fc) — so replayed and freshly mined groups produce identical
// patterns, bit for bit.
func patternsFromStats(st *mdl.StandardTable, stats []invdb.LineStat) []AStar {
	norm := invdb.NormalizeLineStats(stats)
	out := make([]AStar, 0, len(norm))
	for i := 0; i < len(norm); {
		c := norm[i].Core
		j, fc := i, 0
		for ; j < len(norm) && norm[j].Core == c; j++ {
			fc += norm[j].FL
		}
		coreLen := st.SetLen([]graph.AttrID{graph.AttrID(c)})
		for k := i; k < j; k++ {
			out = append(out, AStar{
				CoreValues: []graph.AttrID{graph.AttrID(c)},
				// Copied, not aliased: on a cache hit norm[k].Leaf points into
				// the long-lived cached entry, and patterns carry no read-only
				// contract — an aliasing caller would corrupt the cache.
				LeafValues: append([]graph.AttrID(nil), norm[k].Leaf...),
				FL:         norm[k].FL,
				FC:         fc,
				CodeLen:    coreLen + mdl.CondCodeLen(norm[k].FL, fc),
			})
		}
		i = j
	}
	return out
}

// Miner bundles mining options with a shard-result cache for repeated runs
// over evolving graphs: each Mine call re-mines only the component groups
// whose content changed since the cache last saw them.
type Miner struct {
	opts  Options
	cache *shardcache.Cache
}

// NewMiner validates opts and returns a Miner backed by cache (nil = a fresh
// unbounded in-memory cache).
func NewMiner(opts Options, cache *shardcache.Cache) (*Miner, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if cache == nil {
		cache = shardcache.New(0)
	}
	return &Miner{opts: opts, cache: cache}, nil
}

// Mine runs MineShardedCached over the miner's cache.
func (mi *Miner) Mine(g *graph.Graph) *Model {
	return MineShardedCached(g, mi.opts, mi.cache)
}

// Cache exposes the miner's shard-result cache (for stats and invalidation).
func (mi *Miner) Cache() *shardcache.Cache { return mi.cache }
