package cspm

import (
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"cspm/internal/dataset"
	"cspm/internal/graph"
	"cspm/internal/shardcache"
	"cspm/internal/shardrpc"
)

// distTestGraph is a multi-island graph small enough for chaos scenarios
// that burn retry timeouts but large enough that every island actually
// merges patterns.
func distTestGraph(seed int64) *graph.Graph {
	return dataset.Islands(dataset.IslandsConfig{
		Seed: seed, Islands: 4, MinNodes: 10, MaxNodes: 24,
		AttrsPerIsland: 6, ExtraEdges: 0.8, AttrsPerNode: 3,
	})
}

// assertSameModel pins the bit-identical contract on the fields that are
// pure functions of the mined result (GainEvals legitimately varies with
// shard interleaving, like the sharded and cached suites document).
func assertSameModel(t *testing.T, label string, got, want *Model) {
	t.Helper()
	if got.BaselineDL != want.BaselineDL || got.FinalDL != want.FinalDL ||
		got.CondEntropy != want.CondEntropy || got.Iterations != want.Iterations {
		t.Fatalf("%s: summary diverged: got (%v, %v, %v, %d) want (%v, %v, %v, %d)", label,
			got.BaselineDL, got.FinalDL, got.CondEntropy, got.Iterations,
			want.BaselineDL, want.FinalDL, want.CondEntropy, want.Iterations)
	}
	if !reflect.DeepEqual(got.Patterns, want.Patterns) {
		t.Fatalf("%s: patterns diverged", label)
	}
}

func TestDistributedLoopbackEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 5} {
		g := distTestGraph(seed)
		want := MineWithOptions(g, Options{CollectStats: true})
		for _, shards := range []int{1, 2, 8} {
			m, err := MineDistributed(g, DistributedOptions{Options: Options{Shards: shards}})
			if err != nil {
				t.Fatalf("seed %d shards %d: %v", seed, shards, err)
			}
			assertSameModel(t, "loopback", m, want)
			if m.RemoteJobs == 0 || m.LocalFallbacks != 0 || m.RemoteRetries != 0 {
				t.Fatalf("seed %d shards %d: unexpected diagnostics %+v", seed, shards, m)
			}
		}
	}
}

func TestDistributedTCPEquivalence(t *testing.T) {
	g := distTestGraph(3)
	want := MineWithOptions(g, Options{CollectStats: true})

	// Two worker processes' worth of servers; the client round-robins the
	// component jobs across them.
	var addrs []string
	for i := 0; i < 2; i++ {
		srv := shardrpc.NewServer(ExecuteShardJob, 2)
		ready := make(chan net.Addr, 1)
		go srv.ListenAndServe("127.0.0.1:0", ready)
		addrs = append(addrs, (<-ready).String())
		defer srv.Close()
	}
	cl, err := shardrpc.Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	m, err := MineDistributed(g, DistributedOptions{Transport: cl})
	if err != nil {
		t.Fatal(err)
	}
	assertSameModel(t, "tcp", m, want)
	if m.LocalFallbacks != 0 {
		t.Fatalf("healthy TCP run fell back locally %d times", m.LocalFallbacks)
	}
}

// always applies one fault to every attempt; onFirst only to each job's
// attempt 0, so the retry succeeds.
func always(f shardrpc.Fault) shardrpc.FaultPlan {
	return func(uint64, int) shardrpc.Fault { return f }
}

func onFirst(f shardrpc.Fault) shardrpc.FaultPlan {
	return func(_ uint64, attempt int) shardrpc.Fault {
		if attempt == 0 {
			return f
		}
		return shardrpc.FaultNone
	}
}

// TestDistributedChaosEquivalence is the equivalence-under-failure suite:
// for every fault mode the run must either converge to the bit-identical
// model (retry or local fallback) or fail with a clean typed error — never
// return a silently wrong model.
func TestDistributedChaosEquivalence(t *testing.T) {
	g := distTestGraph(7)
	want := MineWithOptions(g, Options{CollectStats: true})
	const timeout = 80 * time.Millisecond

	cases := []struct {
		name         string
		plan         shardrpc.FaultPlan
		delay        time.Duration
		retries      int
		noFallback   bool
		wantErr      bool
		minRetries   int
		minFallbacks int
	}{
		{name: "clean", plan: always(shardrpc.FaultNone)},
		{name: "drop-once-retry", plan: onFirst(shardrpc.FaultDrop), retries: 1, minRetries: 1},
		{name: "drop-always-fallback", plan: always(shardrpc.FaultDrop), retries: 1, minRetries: 1, minFallbacks: 1},
		{name: "drop-always-nofallback", plan: always(shardrpc.FaultDrop), noFallback: true, wantErr: true},
		{name: "duplicate-all", plan: always(shardrpc.FaultDuplicate)},
		{name: "corrupt-once-retry", plan: onFirst(shardrpc.FaultCorrupt), retries: 1, minRetries: 1},
		{name: "corrupt-always-fallback", plan: always(shardrpc.FaultCorrupt), retries: 1, minRetries: 1, minFallbacks: 1},
		{name: "corrupt-always-nofallback", plan: always(shardrpc.FaultCorrupt), noFallback: true, wantErr: true},
		{name: "truncate-once-retry", plan: onFirst(shardrpc.FaultTruncate), retries: 1, minRetries: 1},
		{name: "worker-error-once-retry", plan: onFirst(shardrpc.FaultError), retries: 1, minRetries: 1},
		{name: "worker-error-always-nofallback", plan: always(shardrpc.FaultError), noFallback: true, wantErr: true},
		{name: "slow-worker-retry", plan: onFirst(shardrpc.FaultDelay), delay: 400 * time.Millisecond, retries: 1, minRetries: 1},
		{name: "disconnect-midstream-fallback", plan: func(jobID uint64, attempt int) shardrpc.Fault {
			// Job ids carry a per-run tag in the high word; the low word
			// is the component-group index.
			if jobID&0xffffffff == 1 && attempt == 0 {
				return shardrpc.FaultDisconnect
			}
			return shardrpc.FaultNone
		}, minFallbacks: 1},
		{name: "disconnect-midstream-nofallback", plan: func(jobID uint64, attempt int) shardrpc.Fault {
			// Job ids carry a per-run tag in the high word; the low word
			// is the component-group index.
			if jobID&0xffffffff == 1 && attempt == 0 {
				return shardrpc.FaultDisconnect
			}
			return shardrpc.FaultNone
		}, noFallback: true, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ch := shardrpc.NewChaos(shardrpc.NewLoopback(ExecuteShardJob, 2), tc.plan, tc.delay)
			defer ch.Close()
			m, err := MineDistributed(g, DistributedOptions{
				Options:    Options{},
				Transport:  ch,
				Retries:    tc.retries,
				Timeout:    timeout,
				NoFallback: tc.noFallback,
			})
			if tc.wantErr {
				if err == nil {
					t.Fatal("fault swallowed: run reported success")
				}
				var derr *DistributedError
				if !errors.As(err, &derr) || len(derr.Jobs) == 0 {
					t.Fatalf("not a typed DistributedError: %v", err)
				}
				if m != nil {
					t.Fatal("model returned alongside an error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			assertSameModel(t, tc.name, m, want)
			if m.RemoteRetries < tc.minRetries {
				t.Fatalf("retries %d, want >= %d", m.RemoteRetries, tc.minRetries)
			}
			if m.LocalFallbacks < tc.minFallbacks {
				t.Fatalf("fallbacks %d, want >= %d", m.LocalFallbacks, tc.minFallbacks)
			}
		})
	}
}

// TestDistributedChaosErrorTypes pins the error taxonomy: corruption
// surfaces as shardrpc.ErrCorruptResult and a worker-side failure as a
// *shardrpc.JobError, both reachable through the DistributedError wrapper.
func TestDistributedChaosErrorTypes(t *testing.T) {
	g := distTestGraph(7)
	run := func(plan shardrpc.FaultPlan) error {
		ch := shardrpc.NewChaos(shardrpc.NewLoopback(ExecuteShardJob, 2), plan, 0)
		defer ch.Close()
		_, err := MineDistributed(g, DistributedOptions{
			Transport: ch, Timeout: 80 * time.Millisecond, NoFallback: true,
		})
		return err
	}
	if err := run(always(shardrpc.FaultCorrupt)); !errors.Is(err, shardrpc.ErrCorruptResult) {
		t.Fatalf("corrupt blobs not tagged ErrCorruptResult: %v", err)
	}
	var je *shardrpc.JobError
	if err := run(always(shardrpc.FaultError)); !errors.As(err, &je) {
		t.Fatalf("worker failure not a JobError: %v", err)
	}
}

// duplicatingTransport executes every job synchronously and delivers its
// result twice — the deterministic skeleton of the retry-plus-late-original
// race. The buffered channel holds every delivery before the collector
// reads the first one.
type duplicatingTransport struct {
	out chan shardrpc.Result
}

func (d *duplicatingTransport) Submit(job shardrpc.Job) error {
	e, err := ExecuteShardJob(job)
	if err != nil {
		d.out <- shardrpc.Result{JobID: job.ID, Err: err.Error()}
		return nil
	}
	blob, sum, err := shardrpc.EncodeEntry(e)
	if err != nil {
		return err
	}
	res := shardrpc.Result{JobID: job.ID, Blob: blob, Sum: sum}
	d.out <- res
	d.out <- res
	return nil
}

func (d *duplicatingTransport) Results() <-chan shardrpc.Result { return d.out }
func (d *duplicatingTransport) Close() error                    { return nil }

// TestDistributedDeduplicatesDoubleDelivery is the double-count regression:
// a transport that delivers every shard result twice must produce the same
// model (and the same iteration totals) as the clean run, with the echoes
// counted and dropped.
func TestDistributedDeduplicatesDoubleDelivery(t *testing.T) {
	g := distTestGraph(11)
	want := MineWithOptions(g, Options{CollectStats: true})
	groups := graph.AttrClosedComponents(g)
	tr := &duplicatingTransport{out: make(chan shardrpc.Result, 4*groups.Count)}
	m, err := MineDistributed(g, DistributedOptions{Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	assertSameModel(t, "duplicated", m, want)
	// Submission is synchronous here and the collector drains between
	// dispatches, so every job's echo is read and discarded: exactly one
	// counted duplicate per job, none double-counted into the merge.
	if m.RemoteDuplicates != groups.Count {
		t.Fatalf("RemoteDuplicates = %d, want %d", m.RemoteDuplicates, groups.Count)
	}
	if m.Iterations != want.Iterations {
		t.Fatalf("iterations double-counted: %d vs %d", m.Iterations, want.Iterations)
	}
}

// closingTransport accepts submissions and then closes its results channel
// — a transport dying mid-run.
type closingTransport struct{ out chan shardrpc.Result }

func (c *closingTransport) Submit(shardrpc.Job) error       { return nil }
func (c *closingTransport) Results() <-chan shardrpc.Result { return c.out }
func (c *closingTransport) Close() error                    { return nil }

func TestDistributedTransportDeath(t *testing.T) {
	g := distTestGraph(13)
	want := MineWithOptions(g, Options{CollectStats: true})

	// Results channel closes immediately: with fallback the model is still
	// exact, without it the run fails with the typed error.
	dead := &closingTransport{out: make(chan shardrpc.Result)}
	close(dead.out)
	m, err := MineDistributed(g, DistributedOptions{Transport: dead, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	assertSameModel(t, "dead transport", m, want)
	if m.LocalFallbacks == 0 {
		t.Fatal("dead transport produced no fallbacks")
	}

	dead2 := &closingTransport{out: make(chan shardrpc.Result)}
	close(dead2.out)
	if _, err := MineDistributed(g, DistributedOptions{Transport: dead2, Timeout: time.Second, NoFallback: true}); !errors.Is(err, shardrpc.ErrClosed) {
		t.Fatalf("transport death not reported as ErrClosed: %v", err)
	}

	// A transport whose Submit itself fails (closed loopback) degrades the
	// same way without waiting out any timeout.
	lb := shardrpc.NewLoopback(ExecuteShardJob, 1)
	lb.Close()
	start := time.Now()
	m, err = MineDistributed(g, DistributedOptions{Transport: lb, Timeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	assertSameModel(t, "submit-dead transport", m, want)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("submit-dead transport waited out timeouts: %v", elapsed)
	}
}

func TestDistributedCacheComposition(t *testing.T) {
	g := distTestGraph(17)
	want := MineWithOptions(g, Options{CollectStats: true})
	groups := graph.AttrClosedComponents(g)
	cache := shardcache.New(0)

	cold, err := MineDistributed(g, DistributedOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	assertSameModel(t, "cold", cold, want)
	if cold.CacheMisses != groups.Count || cold.RemoteJobs != groups.Count {
		t.Fatalf("cold run diagnostics: %+v", cold)
	}

	// Warm run over a transport that would fail every job: with every
	// group a cache hit, no job is ever built, so the hostile transport is
	// never consulted — remote results and cache hits are the same bytes.
	ch := shardrpc.NewChaos(shardrpc.NewLoopback(ExecuteShardJob, 1), always(shardrpc.FaultDrop), 0)
	defer ch.Close()
	warm, err := MineDistributed(g, DistributedOptions{Cache: cache, Transport: ch,
		Timeout: 50 * time.Millisecond, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameModel(t, "warm", warm, want)
	if warm.CacheHits != groups.Count || warm.RemoteJobs != 0 {
		t.Fatalf("warm run diagnostics: %+v", warm)
	}

	// Eviction accounting mirrors the cached miner: a capacity-1 cache
	// evicts on every fill past the first, and the run must report the
	// delta.
	small, err := MineDistributed(g, DistributedOptions{Cache: shardcache.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	assertSameModel(t, "tiny cache", small, want)
	if small.CacheEvictions != groups.Count-1 {
		t.Fatalf("CacheEvictions = %d, want %d", small.CacheEvictions, groups.Count-1)
	}

	// The distributed cache fill must interoperate with the cached miner:
	// a MineShardedCached run over the same cache is fully warm.
	cachedRun := MineShardedCached(g, Options{}, cache)
	if cachedRun.CacheMisses != 0 {
		t.Fatalf("cached miner re-mined %d groups after a distributed fill", cachedRun.CacheMisses)
	}
	assertSameModel(t, "cached-after-distributed", cachedRun, want)
}

func TestDistributedOptionsValidate(t *testing.T) {
	g := distTestGraph(1)
	for _, opts := range []DistributedOptions{
		{Retries: -1},
		{Timeout: -time.Second},
		{Options: Options{Workers: -1}},
		{Options: Options{Shards: -2}},
	} {
		if _, err := MineDistributed(g, opts); err == nil {
			t.Fatalf("invalid options %+v accepted", opts)
		}
	}
}

func TestExecuteShardJobRejectsMalformedJobs(t *testing.T) {
	g := distTestGraph(1)
	groups := graph.AttrClosedComponents(g)
	members := groups.Members()
	st := mineStandardFreqs(g)
	good := buildShardJob(g, st, Options{}, 0, members[0])
	if _, err := ExecuteShardJob(good); err != nil {
		t.Fatalf("well-formed job rejected: %v", err)
	}
	for name, mut := range map[string]func(*shardrpc.Job){
		"freqs mismatch":  func(j *shardrpc.Job) { j.STFreqs = j.STFreqs[:1] },
		"unknown variant": func(j *shardrpc.Job) { j.Variant = 42 },
		"bad workers":     func(j *shardrpc.Job) { j.Workers = -1 },
	} {
		j := buildShardJob(g, st, Options{}, 0, members[0])
		mut(&j)
		if _, err := ExecuteShardJob(j); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// mineStandardFreqs mirrors MineDistributed's global-context extraction for
// job-construction tests.
func mineStandardFreqs(g *graph.Graph) []int {
	freqs := make([]int, g.NumAttrValues())
	for v := 0; v < g.NumVertices(); v++ {
		for _, a := range g.Attrs(graph.VertexID(v)) {
			freqs[a]++
		}
	}
	return freqs
}

// replayableTransport executes jobs synchronously and can replay every
// result it ever produced — the deterministic skeleton of a long-lived
// fleet connection delivering one run's late results into the next run.
type replayableTransport struct {
	out     chan shardrpc.Result
	history []shardrpc.Result
}

func (r *replayableTransport) Submit(job shardrpc.Job) error {
	res := execFakeResult(job)
	r.history = append(r.history, res)
	r.out <- res
	return nil
}

func (r *replayableTransport) Results() <-chan shardrpc.Result { return r.out }
func (r *replayableTransport) Close() error                    { return nil }

// execFakeResult runs the real handler and wraps the entry the way a
// worker would.
func execFakeResult(job shardrpc.Job) shardrpc.Result {
	jobSum, err := shardrpc.JobChecksum(job)
	if err != nil {
		return shardrpc.Result{JobID: job.ID, Err: err.Error()}
	}
	e, err := ExecuteShardJob(job)
	if err != nil {
		return shardrpc.Result{JobID: job.ID, JobSum: jobSum, Err: err.Error()}
	}
	blob, sum, err := shardrpc.EncodeEntry(e)
	if err != nil {
		return shardrpc.Result{JobID: job.ID, JobSum: jobSum, Err: err.Error()}
	}
	return shardrpc.Result{JobID: job.ID, JobSum: jobSum, Blob: blob, Sum: sum}
}

// TestDistributedStaleResultsAcrossRuns pins the run-scoping of job ids: a
// transport reused for a second MineDistributed call over a DIFFERENT
// graph delivers every result of the first run again, and the second run
// must shrug them off as duplicates — not match them to its own jobs, not
// mistake them for corruption, and above all not merge them.
func TestDistributedStaleResultsAcrossRuns(t *testing.T) {
	g1, g2 := distTestGraph(19), distTestGraph(23)
	want2 := MineWithOptions(g2, Options{CollectStats: true})
	tr := &replayableTransport{out: make(chan shardrpc.Result, 256)}
	if _, err := MineDistributed(g1, DistributedOptions{Transport: tr}); err != nil {
		t.Fatal(err)
	}
	stale := len(tr.history)
	// The first run's results arrive again, ahead of the second run's own.
	for _, res := range tr.history {
		tr.out <- res
	}
	tr.history = nil
	m, err := MineDistributed(g2, DistributedOptions{Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	assertSameModel(t, "second run", m, want2)
	if m.RemoteDuplicates != stale {
		t.Fatalf("RemoteDuplicates = %d, want the %d stale results", m.RemoteDuplicates, stale)
	}
	if m.RemoteRetries != 0 || m.LocalFallbacks != 0 {
		t.Fatalf("stale results were misread as failures: %d retries, %d fallbacks", m.RemoteRetries, m.LocalFallbacks)
	}
}

// mutatingTransport corrupts each job BEFORE the worker mines it — the
// fault the result checksum alone cannot see, because the worker
// faithfully checksums its own wrong output.
type mutatingTransport struct {
	out chan shardrpc.Result
}

func (mt *mutatingTransport) Submit(job shardrpc.Job) error {
	job.Attrs[0] = append([]graph.AttrID(nil), job.Attrs[0]...)
	job.Attrs[0][0] = (job.Attrs[0][0] + 1) % graph.AttrID(job.NumAttrValues)
	mt.out <- execFakeResult(job)
	return nil
}

func (mt *mutatingTransport) Results() <-chan shardrpc.Result { return mt.out }
func (mt *mutatingTransport) Close() error                    { return nil }

// TestDistributedRejectsMutatedJobs: a job flipped in flight decodes,
// validates and mines cleanly on the worker, so only the echoed job
// checksum can unmask it. The run must fall back to exact local mining (or
// report corruption with fallback off) — never merge the wrong shard.
func TestDistributedRejectsMutatedJobs(t *testing.T) {
	g := distTestGraph(29)
	want := MineWithOptions(g, Options{CollectStats: true})
	groups := graph.AttrClosedComponents(g)
	m, err := MineDistributed(g, DistributedOptions{
		Transport: &mutatingTransport{out: make(chan shardrpc.Result, 64)},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameModel(t, "mutated jobs", m, want)
	if m.LocalFallbacks != groups.Count {
		t.Fatalf("LocalFallbacks = %d, want every group (%d)", m.LocalFallbacks, groups.Count)
	}
	_, err = MineDistributed(g, DistributedOptions{
		Transport:  &mutatingTransport{out: make(chan shardrpc.Result, 64)},
		NoFallback: true,
	})
	if !errors.Is(err, shardrpc.ErrCorruptResult) {
		t.Fatalf("mutated jobs not reported as corruption: %v", err)
	}
}
