package cspm

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"cspm/internal/graph"
	"cspm/internal/invdb"
	"cspm/internal/mdl"
	"cspm/internal/shardcache"
	"cspm/internal/shardrpc"
)

// DefaultRemoteTimeout is the per-attempt wait for a shard job's result
// when DistributedOptions.Timeout is zero.
const DefaultRemoteTimeout = 30 * time.Second

// DistributedOptions configures MineDistributed: the search options every
// shard job carries plus the fan-out policy around them.
type DistributedOptions struct {
	Options

	// Transport moves jobs to workers; nil runs an in-process loopback
	// worker pool (Options.Shards bounds its size) — the same code path
	// minus the sockets, which is what the bench scenario measures.
	Transport shardrpc.Transport
	// Retries is how many times one job is re-submitted after a failed
	// attempt (timeout, corrupt blob, worker error) before it falls back
	// to local mining; 0 means a single attempt per job.
	Retries int
	// Timeout bounds each attempt's wait for a result (0 = the
	// DefaultRemoteTimeout).
	Timeout time.Duration
	// NoFallback turns exhausted jobs into a *DistributedError instead of
	// mining them locally. The default (fallback on) makes MineDistributed
	// total: any transport, however lossy, yields the exact model.
	NoFallback bool
	// Cache, when non-nil, is consulted before jobs are built (hits skip
	// the transport entirely) and filled with every collected entry —
	// remote results and cache hits are interchangeable bytes, so the two
	// subsystems compose for free.
	Cache *shardcache.Cache
}

// Validate sanity-checks the distributed options.
func (o DistributedOptions) Validate() error {
	if err := o.Options.Validate(); err != nil {
		return err
	}
	if o.Retries < 0 {
		return fmt.Errorf("cspm: Retries must be >= 0, got %d", o.Retries)
	}
	if o.Timeout < 0 {
		return fmt.Errorf("cspm: Timeout must be >= 0, got %v", o.Timeout)
	}
	return nil
}

// FailedJob is one shard job that exhausted its attempts.
type FailedJob struct {
	Group int   // index of the attribute-closed component group
	Err   error // the last attempt's failure
}

// DistributedError reports the jobs a MineDistributed run could not collect
// with local fallback disabled. It wraps the per-job errors, so errors.Is
// sees through to e.g. shardrpc.ErrCorruptResult.
type DistributedError struct {
	Jobs []FailedJob
}

func (e *DistributedError) Error() string {
	if len(e.Jobs) == 1 {
		return fmt.Sprintf("cspm: distributed mining: shard job for group %d failed: %v", e.Jobs[0].Group, e.Jobs[0].Err)
	}
	return fmt.Sprintf("cspm: distributed mining: %d shard jobs failed (first: group %d: %v)", len(e.Jobs), e.Jobs[0].Group, e.Jobs[0].Err)
}

// Unwrap exposes the per-job causes to errors.Is/As.
func (e *DistributedError) Unwrap() []error {
	errs := make([]error, len(e.Jobs))
	for i, j := range e.Jobs {
		errs[i] = j.Err
	}
	return errs
}

// ExecuteShardJob mines one shard job into a cache entry — the worker side
// of distributed mining, wired as the shardrpc Handler by cmd/cspm-worker
// and the in-process loopback. The job is self-contained: the DB is rebuilt
// from the shipped vertex slice against the shipped global standard table,
// so the entry is bit-identical to the one a local shard run over the same
// group would produce (see invdb.FromShardData).
func ExecuteShardJob(job shardrpc.Job) (*shardcache.Entry, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	opts := Options{
		Variant:          Variant(job.Variant),
		MaxIterations:    job.MaxIterations,
		DisableModelCost: job.DisableModelCost,
		Workers:          job.Workers,
	}
	if opts.Variant != Partial && opts.Variant != Basic {
		// A job from a newer coordinator must fail loudly, not silently
		// mine the default variant into a wrong-looking entry.
		return nil, fmt.Errorf("cspm: shard job %d: unknown variant %d", job.ID, job.Variant)
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	st := mdl.NewStandardTableFromFreqs(job.STFreqs)
	db := invdb.FromShardData(st, job.NumAttrValues, job.Attrs, job.Adj)
	stats := &runStats{}
	init := db.AppendLineStats(nil)
	switch opts.Variant {
	case Basic:
		mineBasic(db, opts, stats)
	default:
		minePartial(db, opts, stats)
	}
	return &shardcache.Entry{
		Init: init, Final: db.AppendLineStats(nil),
		Iterations: stats.iterations, GainEvals: stats.gainEvals,
	}, nil
}

// buildShardJob remaps one component group into a self-contained shard job:
// per-local-vertex attribute lists (global ids) and local adjacency rows.
// verts is sorted ascending, so the remap preserves neighbour order and the
// worker-side DB construction walks vertices in the same order as a local
// FromGraphShard would.
func buildShardJob(g *graph.Graph, stFreqs []int, opts Options, id uint64, verts []graph.VertexID) shardrpc.Job {
	local := make(map[graph.VertexID]graph.VertexID, len(verts))
	for li, gv := range verts {
		local[gv] = graph.VertexID(li)
	}
	attrs := make([][]graph.AttrID, len(verts))
	adj := make([][]graph.VertexID, len(verts))
	for li, gv := range verts {
		attrs[li] = append([]graph.AttrID(nil), g.Attrs(gv)...)
		ns := g.Neighbors(gv)
		row := make([]graph.VertexID, len(ns))
		for i, u := range ns {
			// Attribute-closed component groups are unions of connected
			// components: every neighbour is in verts, so the lookup always
			// hits.
			row[i] = local[u]
		}
		adj[li] = row
	}
	return shardrpc.Job{
		ID:            id,
		NumAttrValues: len(stFreqs),
		Attrs:         attrs,
		Adj:           adj,
		STFreqs:       stFreqs,
		Variant:       int(opts.Variant),
		MaxIterations: opts.MaxIterations,
		// Workers is the PER-WORKER evaluator budget: remote machines do
		// not share the coordinator's cores, so the budget is not split the
		// way runShards splits it (results are identical either way by the
		// determinism contract).
		Workers:          opts.Workers,
		DisableModelCost: opts.DisableModelCost,
	}
}

// MineDistributed mines g like MineShardedCached — one shard job per
// attribute-closed component group, merged exactly — but executes the jobs
// over a shardrpc transport: an in-process worker pool by default, remote
// cspm-worker processes over TCP, or a fault-injecting wrapper in tests.
// Failed attempts (drop, timeout, corrupt or truncated blob, worker error)
// are retried up to opts.Retries times and then mined locally, so the
// result is bit-identical to Mine(g) for every transport behaviour — or,
// with NoFallback set, a *DistributedError; never a silently wrong model.
// Responses are matched and deduplicated by job id, so a transport that
// delivers a result twice (a retry racing its late original) cannot
// double-count a group in the merge.
//
// Options.MaxIterations caps each group's merges independently (the
// MineSharded/MineShardedCached semantics, not Mine's global cap) and
// per-iteration traces (Model.PerIter) are not collected — entries carry
// only the iteration totals. Like MineShardedCached, mining is always
// component-grained; Options.ShardStrategy is ignored.
func MineDistributed(g *graph.Graph, opts DistributedOptions) (*Model, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	groups := graph.AttrClosedComponents(g)
	members := groups.Members()
	st := mdl.NewStandardTable(g)
	stFreqs := st.Freqs()
	m := &Model{Vocab: g.Vocab()}

	// Cache consult: hits are finished groups before any job is built.
	entries := make([]*shardcache.Entry, groups.Count)
	var keys []shardcache.Key
	var evBefore uint64
	if opts.Cache != nil {
		evBefore = opts.Cache.Stats().Evictions
		fps := groups.Fingerprints(g)
		global := graph.GlobalFingerprint(g)
		search := searchFingerprint(opts.Options)
		keys = make([]shardcache.Key, groups.Count)
		for gi := range keys {
			keys[gi] = shardcache.Key{Component: fps[gi], Global: global, Search: search}
			if e, ok := opts.Cache.Get(keys[gi]); ok {
				entries[gi] = e
				m.CacheHits++
			}
		}
	}
	var jobGroups []int
	for gi := 0; gi < groups.Count; gi++ {
		if entries[gi] == nil {
			jobGroups = append(jobGroups, gi)
		}
	}
	if opts.Cache != nil {
		m.CacheMisses = len(jobGroups)
	}
	m.ShardCount = len(jobGroups)
	m.RemoteJobs = len(jobGroups)

	fallbackOpts := opts.Options
	transport := opts.Transport
	if transport == nil && len(jobGroups) > 0 {
		k := opts.Shards
		if k == 0 {
			k = runtime.GOMAXPROCS(0)
		}
		pool := min(k, len(jobGroups))
		lb := shardrpc.NewLoopback(ExecuteShardJob, pool)
		defer lb.Close()
		transport = lb
		// The in-process pool shares the coordinator's cores, so split the
		// evaluation budget across the concurrent jobs the way runShards
		// splits it — each job's Workers is its own evaluator count, and
		// results are bit-identical for any value. Remote transports keep
		// the unsplit budget: their workers' cores are not ours.
		opts.Workers = max(1, opts.workerCount()/pool)
	}

	failed := collectRemote(transport, g, stFreqs, opts, jobGroups, members, entries, m)
	if len(failed) > 0 {
		if opts.NoFallback {
			return nil, &DistributedError{Jobs: failed}
		}
		mineFallback(g, st, fallbackOpts, failed, members, entries, m)
	}
	if opts.Cache != nil {
		for _, gi := range jobGroups {
			// A failed disk write only loses persistence; mining
			// correctness is unaffected (same contract as the cached miner).
			_ = opts.Cache.Put(keys[gi], entries[gi])
		}
		m.CacheEvictions = int(opts.Cache.Stats().Evictions - evBefore)
	}
	for _, e := range entries {
		m.Iterations += e.Iterations
		m.GainEvals += e.GainEvals
	}
	mergeEntryStats(m, st, entries)
	return m, nil
}

// pendingJob tracks one dispatched shard job through its attempts.
type pendingJob struct {
	group    int
	job      shardrpc.Job
	jobSum   [sha256.Size]byte // checksum of the job as sent
	attempts int               // submissions so far
	deadline time.Time
	lastErr  error
}

// distRunSeq tags every MineDistributed run's job ids with a distinct high
// word, so a transport reused across runs (a long-lived worker fleet
// client) can never match one run's late result to another run's job: the
// stale id misses the outstanding map and is counted as a duplicate.
var distRunSeq atomic.Uint64

// collectRemote dispatches one job per group in jobGroups and collects
// entries, retrying failed attempts up to opts.Retries times. It returns
// the jobs that exhausted their attempts; everything else has its entry
// slot filled. Responses whose job is already satisfied are counted on
// m.RemoteDuplicates and dropped — the dedupe that keeps a duplicating
// transport from double-counting a group.
func collectRemote(t shardrpc.Transport, g *graph.Graph, stFreqs []int, opts DistributedOptions, jobGroups []int, members [][]graph.VertexID, entries []*shardcache.Entry, m *Model) []FailedJob {
	if len(jobGroups) == 0 {
		return nil
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = DefaultRemoteTimeout
	}
	maxAttempts := opts.Retries + 1
	outstanding := make(map[uint64]*pendingJob, len(jobGroups))
	var failed []FailedJob

	// dispatch submits p's next attempt; when the budget is spent, the job
	// moves to failed. A Submit error (every worker down) consumes attempts
	// in-place, so a fully dead transport degrades to local fallback
	// without waiting out timeouts.
	dispatch := func(p *pendingJob) {
		for p.attempts < maxAttempts {
			if p.attempts > 0 {
				m.RemoteRetries++
			}
			p.attempts++
			if err := t.Submit(p.job); err != nil {
				p.lastErr = fmt.Errorf("shard job %d: submit: %w", p.job.ID, err)
				continue
			}
			// The deadline starts only once the job is handed over: a slow
			// Submit (a TCP write stalling toward its own deadline) must
			// not eat into the documented wait-for-result budget.
			p.deadline = time.Now().Add(timeout)
			return
		}
		delete(outstanding, p.job.ID)
		failed = append(failed, FailedJob{Group: p.group, Err: p.lastErr})
	}

	// handle matches one response to its pending job: echoes of satisfied
	// jobs are counted and dropped, failures re-dispatch, successes fill
	// the entry slot. The worker's echoed job checksum must match the job
	// as sent — a transport that mutated the job in flight made the worker
	// mine the wrong shard, and its (internally consistent) entry must be
	// rejected like any other corruption.
	handle := func(res shardrpc.Result) {
		p, want := outstanding[res.JobID]
		if !want {
			m.RemoteDuplicates++
			return
		}
		if res.Err != "" {
			p.lastErr = &shardrpc.JobError{JobID: res.JobID, Msg: res.Err}
			dispatch(p)
			return
		}
		if res.JobSum != p.jobSum {
			p.lastErr = fmt.Errorf("shard job %d: %w: job mutated in transit (worker mined different input)", res.JobID, shardrpc.ErrCorruptResult)
			dispatch(p)
			return
		}
		e, err := shardrpc.DecodeEntry(res.Blob, res.Sum)
		if err != nil {
			p.lastErr = fmt.Errorf("shard job %d: %w", res.JobID, err)
			dispatch(p)
			return
		}
		entries[p.group] = e
		delete(outstanding, res.JobID)
	}

	runTag := distRunSeq.Add(1) << 32
	for _, gi := range jobGroups {
		p := &pendingJob{group: gi, job: buildShardJob(g, stFreqs, opts.Options, runTag|uint64(gi), members[gi])}
		var err error
		if p.jobSum, err = shardrpc.JobChecksum(p.job); err != nil {
			// Unencodable jobs cannot travel at all; fail the job into the
			// fallback path instead of submitting garbage.
			failed = append(failed, FailedJob{Group: gi, Err: err})
			continue
		}
		outstanding[p.job.ID] = p
		dispatch(p)
		// Drain whatever is already ready between dispatches: transports
		// buffer a bounded number of results (and may drop past the bound),
		// so a fleet larger than the buffer must not have every slot full
		// before we read the first one. A closed channel is left for the
		// collect loop below to diagnose.
		for draining := true; draining; {
			select {
			case res, ok := <-t.Results():
				if !ok {
					draining = false
					break
				}
				handle(res)
			default:
				draining = false
			}
		}
	}
	for len(outstanding) > 0 {
		var next time.Time
		for _, p := range outstanding {
			if next.IsZero() || p.deadline.Before(next) {
				next = p.deadline
			}
		}
		wait := time.Until(next)
		if wait < 0 {
			wait = 0
		}
		timer := time.NewTimer(wait)
		select {
		case res, ok := <-t.Results():
			timer.Stop()
			if !ok {
				// The transport shut down under us: nothing further will
				// arrive, so every outstanding job fails its remaining
				// attempts at once.
				for id, p := range outstanding {
					delete(outstanding, id)
					failed = append(failed, FailedJob{Group: p.group,
						Err: fmt.Errorf("shard job %d: %w", p.job.ID, shardrpc.ErrClosed)})
				}
				continue
			}
			handle(res)
		case <-timer.C:
			now := time.Now()
			for _, p := range outstanding {
				if !p.deadline.After(now) {
					p.lastErr = fmt.Errorf("shard job %d: no result within %v (attempt %d of %d)", p.job.ID, timeout, p.attempts, maxAttempts)
					dispatch(p)
				}
			}
		}
	}
	return failed
}

// mineFallback mines the failed groups in-process — the exact dirty-group
// path of the cached miner, so a fallback entry is indistinguishable from
// the remote entry that never arrived.
func mineFallback(g *graph.Graph, st *mdl.StandardTable, opts Options, failed []FailedJob, members [][]graph.VertexID, entries []*shardcache.Entry, m *Model) {
	runOpts := opts
	runOpts.CollectStats = true
	shards := make([]*shardRun, len(failed))
	for i, f := range failed {
		shards[i] = &shardRun{verts: members[f.Group]}
	}
	k := opts.Shards
	if k == 0 {
		k = runtime.GOMAXPROCS(0)
	}
	runShards(g, st, runOpts, shards, k)
	for i, f := range failed {
		sh := shards[i]
		entries[f.Group] = &shardcache.Entry{
			Init: sh.init, Final: sh.final,
			Iterations: sh.stats.iterations, GainEvals: sh.stats.gainEvals,
		}
	}
	m.LocalFallbacks = len(failed)
}
