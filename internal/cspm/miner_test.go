package cspm

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"cspm/internal/graph"
	"cspm/internal/invdb"
)

func fig1(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(5)
	for v, vals := range map[graph.VertexID][]string{
		0: {"a"}, 1: {"a", "c"}, 2: {"c"}, 3: {"b"}, 4: {"a", "b"},
	} {
		for _, val := range vals {
			if err := b.AddAttr(v, val); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range [][2]graph.VertexID{{0, 1}, {0, 2}, {0, 3}, {2, 4}, {3, 4}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func randomGraph(rng *rand.Rand, n, attrs int, edgeP, attrP float64) *graph.Graph {
	b := graph.NewBuilder(n)
	names := make([]string, attrs)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	for v := 0; v < n; v++ {
		got := false
		for _, name := range names {
			if rng.Float64() < attrP {
				_ = b.AddAttr(graph.VertexID(v), name)
				got = true
			}
		}
		if !got {
			_ = b.AddAttr(graph.VertexID(v), names[rng.Intn(len(names))])
		}
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < edgeP {
				_ = b.AddEdge(graph.VertexID(u), graph.VertexID(v))
			}
		}
	}
	return b.Build()
}

func TestMineFig1(t *testing.T) {
	g := fig1(t)
	m := Mine(g)
	if len(m.Patterns) == 0 {
		t.Fatal("no patterns mined")
	}
	if m.FinalDL > m.BaselineDL {
		t.Fatalf("mining increased DL: %v > %v", m.FinalDL, m.BaselineDL)
	}
	// Patterns must come out sorted by ascending code length.
	for i := 1; i < len(m.Patterns); i++ {
		if m.Patterns[i].CodeLen < m.Patterns[i-1].CodeLen {
			t.Fatalf("patterns unsorted at %d: %v < %v", i, m.Patterns[i].CodeLen, m.Patterns[i-1].CodeLen)
		}
	}
	// The paper's worked merge: ({a},{b,c}) should be discovered.
	found := false
	for _, p := range m.MultiLeaf() {
		if p.Format(g.Vocab()) == "({a}, {b c})" {
			found = true
			if p.FL != 2 {
				t.Errorf("({a},{b,c}).FL = %d, want 2", p.FL)
			}
		}
	}
	if !found {
		t.Error("merged pattern ({a},{b c}) not in model")
	}
}

func TestMineBasicMatchesPartialOnFig1(t *testing.T) {
	g := fig1(t)
	basic := MineWithOptions(g, Options{Variant: Basic, CollectStats: true})
	partial := MineWithOptions(g, Options{Variant: Partial, CollectStats: true})
	if math.Abs(basic.FinalDL-partial.FinalDL) > 1e-9 {
		t.Fatalf("Basic DL %v != Partial DL %v", basic.FinalDL, partial.FinalDL)
	}
	if len(basic.Patterns) != len(partial.Patterns) {
		t.Fatalf("pattern counts differ: %d vs %d", len(basic.Patterns), len(partial.Patterns))
	}
}

// On random graphs the two variants may diverge slightly (Partial skips
// refreshing pairs whose shared-coreset frequencies changed through
// unrelated merges — an approximation the paper accepts); verify both
// compress and land within a small relative distance of each other.
func TestBasicVsPartialCloseOnRandomGraphs(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 30, 6, 0.15, 0.4)
		basic := MineWithOptions(g, Options{Variant: Basic})
		partial := MineWithOptions(g, Options{Variant: Partial})
		if basic.FinalDL > basic.BaselineDL+1e-9 {
			t.Fatalf("seed %d: Basic expanded DL", seed)
		}
		if partial.FinalDL > partial.BaselineDL+1e-9 {
			t.Fatalf("seed %d: Partial expanded DL", seed)
		}
		if basic.BaselineDL > 0 {
			rel := math.Abs(basic.FinalDL-partial.FinalDL) / basic.BaselineDL
			if rel > 0.02 {
				t.Fatalf("seed %d: variants diverged by %.2f%% of baseline", seed, 100*rel)
			}
		}
	}
}

func TestEveryRecordedMergeCompresses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 40, 6, 0.12, 0.4)
	for _, variant := range []Variant{Basic, Partial} {
		m := MineWithOptions(g, Options{Variant: variant, CollectStats: true})
		prev := m.BaselineDL
		for _, it := range m.PerIter {
			if it.Gain < 0 {
				t.Fatalf("%v: iteration %d applied negative gain %v", variant, it.Iteration, it.Gain)
			}
			if it.TotalDL > prev+1e-9 {
				t.Fatalf("%v: DL increased at iteration %d: %v -> %v", variant, it.Iteration, prev, it.TotalDL)
			}
			prev = it.TotalDL
			if it.UpdateRatio < 0 || it.UpdateRatio > 1+1e-9 {
				t.Fatalf("%v: update ratio %v outside [0,1]", variant, it.UpdateRatio)
			}
		}
	}
}

func TestPartialDoesFewerGainEvals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 60, 8, 0.1, 0.35)
	basic := MineWithOptions(g, Options{Variant: Basic, CollectStats: true})
	partial := MineWithOptions(g, Options{Variant: Partial, CollectStats: true})
	if basic.Iterations == 0 {
		t.Skip("graph produced no merges")
	}
	if partial.GainEvals >= basic.GainEvals {
		t.Fatalf("Partial evals %d >= Basic evals %d — optimization not effective",
			partial.GainEvals, basic.GainEvals)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 25, 5, 0.2, 0.4)
	m1 := MineWithOptions(g, Options{CollectStats: true})
	m2 := MineWithOptions(g, Options{CollectStats: true})
	if m1.FinalDL != m2.FinalDL || len(m1.Patterns) != len(m2.Patterns) {
		t.Fatal("mining is not deterministic")
	}
	for i := range m1.Patterns {
		if !reflect.DeepEqual(m1.Patterns[i], m2.Patterns[i]) {
			t.Fatalf("pattern %d differs between runs", i)
		}
	}
}

func TestMaxIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 40, 6, 0.15, 0.4)
	full := MineWithOptions(g, Options{CollectStats: true})
	if full.Iterations < 2 {
		t.Skip("not enough merges to test the cap")
	}
	capped := MineWithOptions(g, Options{CollectStats: true, MaxIterations: 1})
	if capped.Iterations > 1 {
		t.Fatalf("MaxIterations=1 ran %d iterations", capped.Iterations)
	}
}

func TestAblationDisableModelCost(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 40, 6, 0.15, 0.4)
	with := MineWithOptions(g, Options{CollectStats: true})
	without := MineWithOptions(g, Options{CollectStats: true, DisableModelCost: true})
	// Without the model-cost guard the miner merges at least as eagerly.
	if without.Iterations < with.Iterations {
		t.Fatalf("ablation merged less: %d < %d", without.Iterations, with.Iterations)
	}
}

func TestModelHelpers(t *testing.T) {
	g := fig1(t)
	m := Mine(g)
	if got := m.TopK(2); len(got) != 2 {
		t.Fatalf("TopK(2) = %d patterns", len(got))
	}
	if got := m.TopK(10_000); len(got) != len(m.Patterns) {
		t.Fatal("TopK should clamp")
	}
	if r := m.CompressionRatio(); r <= 0 || r > 1 {
		t.Fatalf("CompressionRatio = %v", r)
	}
	for _, p := range m.Patterns {
		c := p.Confidence()
		if c < 0 || c > 1 {
			t.Fatalf("Confidence = %v outside [0,1]", c)
		}
	}
}

func TestAStarFormat(t *testing.T) {
	v := graph.NewVocab()
	icdm, pods, edbt := v.ID("ICDM"), v.ID("PODS"), v.ID("EDBT")
	s := AStar{CoreValues: []graph.AttrID{icdm}, LeafValues: []graph.AttrID{pods, edbt}}
	if got := s.Format(v); got != "({ICDM}, {EDBT PODS})" {
		t.Fatalf("Format = %q", got)
	}
}

func TestCandidateSet(t *testing.T) {
	cs := newCandidateSet()
	cs.Set(1, 2, 5.0)
	cs.Set(3, 4, 9.0)
	cs.Set(1, 2, 7.0) // supersedes
	if cs.Len() != 2 {
		t.Fatalf("Len = %d, want 2", cs.Len())
	}
	a, b, gain, ok := cs.PopMax()
	if !ok || gain != 9.0 || pairKey(a, b) != pairKey(3, 4) {
		t.Fatalf("PopMax = (%d,%d,%v,%v)", a, b, gain, ok)
	}
	a, b, gain, ok = cs.PopMax()
	if !ok || gain != 7.0 || pairKey(a, b) != pairKey(1, 2) {
		t.Fatalf("PopMax = (%d,%d,%v,%v), want updated gain 7", a, b, gain, ok)
	}
	if _, _, _, ok := cs.PopMax(); ok {
		t.Fatal("PopMax on empty set returned ok")
	}
	cs.Set(5, 6, 1.0)
	cs.Remove(5, 6)
	if _, _, _, ok := cs.PopMax(); ok {
		t.Fatal("removed entry still popped")
	}
}

func TestPairKeySymmetric(t *testing.T) {
	if pairKey(2, 9) != pairKey(9, 2) {
		t.Fatal("pairKey is order-sensitive")
	}
	a, b := unpackPair(pairKey(9, 2))
	if a != 2 || b != 9 {
		t.Fatalf("unpackPair = (%d,%d)", a, b)
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{MaxIterations: -1}).Validate(); err == nil {
		t.Fatal("negative MaxIterations accepted")
	}
	if err := (Options{Workers: -1}).Validate(); err == nil {
		t.Fatal("negative Workers accepted")
	}
	if err := (Options{Shards: -1}).Validate(); err == nil {
		t.Fatal("negative Shards accepted")
	}
	if err := (Options{ShardStrategy: ShardStrategy(3)}).Validate(); err == nil {
		t.Fatal("out-of-range ShardStrategy accepted")
	}
	if err := (Options{ShardStrategy: ShardStrategy(-1)}).Validate(); err == nil {
		t.Fatal("negative ShardStrategy accepted")
	}
	if err := (Options{}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, s := range []ShardStrategy{ShardAuto, ShardComponents, ShardEdgeCut} {
		if err := (Options{Shards: 4, ShardStrategy: s}).Validate(); err != nil {
			t.Fatalf("valid strategy %v rejected: %v", s, err)
		}
	}
}

func TestRdict(t *testing.T) {
	r := make(rdict)
	r.add(1, 2)
	r.add(1, 3)
	if got := r.related(1); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("related = %v", got)
	}
	r.removePair(1, 2)
	if got := r.related(1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("after removePair related = %v", got)
	}
	cs := newCandidateSet()
	cs.Set(1, 3, 2.0)
	r.removeLeafset(1, cs)
	if len(r) != 0 {
		t.Fatalf("rdict not empty after removeLeafset: %v", r)
	}
	if cs.Len() != 0 {
		t.Fatal("candidates not cleared with leafset")
	}
}

func TestMineDBWithPreparedDatabase(t *testing.T) {
	g := fig1(t)
	db := invdb.FromGraph(g)
	m := MineDB(db, g.Vocab(), Options{CollectStats: true})
	if m.FinalDL > m.BaselineDL {
		t.Fatal("MineDB expanded DL")
	}
}

func TestWorkersMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomGraph(rng, 50, 7, 0.12, 0.4)
	for _, variant := range []Variant{Basic, Partial} {
		serial := MineWithOptions(g, Options{Variant: variant, CollectStats: true})
		parallel := MineWithOptions(g, Options{Variant: variant, CollectStats: true, Workers: 4})
		if serial.FinalDL != parallel.FinalDL {
			t.Fatalf("%v: parallel DL %v != serial %v", variant, parallel.FinalDL, serial.FinalDL)
		}
		if len(serial.Patterns) != len(parallel.Patterns) {
			t.Fatalf("%v: pattern counts differ", variant)
		}
		for i := range serial.Patterns {
			if !reflect.DeepEqual(serial.Patterns[i], parallel.Patterns[i]) {
				t.Fatalf("%v: pattern %d differs under parallel evaluation", variant, i)
			}
		}
	}
}

// TestMinedPositionsAreSoundMatches cross-validates the miner against the
// declarative a-star matching semantics of §IV-A: every mined pattern's
// occurrence count fL can never exceed the number of vertices its
// (core, leafset) shape actually matches in the graph.
func TestMinedPositionsAreSoundMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(rng, 35, 5, 0.15, 0.45)
	m := Mine(g)
	for _, p := range m.Patterns {
		shape, err := graph.NewAStarShape(p.CoreValues, p.LeafValues)
		if err != nil {
			t.Fatalf("mined pattern is malformed: %v", err)
		}
		matches := shape.Matches(g)
		if p.FL > len(matches) {
			t.Fatalf("pattern %s claims fL=%d but only %d vertices match",
				p.Format(g.Vocab()), p.FL, len(matches))
		}
	}
}
