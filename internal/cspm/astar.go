// Package cspm implements the paper's contribution: the Compressing Star
// Pattern Miner (CSPM), a parameter-free algorithm that extracts
// attribute-stars from an attributed graph by greedily merging
// inverted-database leafsets under the MDL principle (paper §IV–V). Both
// variants are provided: CSPM-Basic (Algorithm 1, full candidate
// regeneration each iteration) and CSPM-Partial (Algorithms 3–4,
// incremental gain maintenance through the related-leafset dictionary).
package cspm

import (
	"fmt"
	"sort"
	"strings"

	"cspm/internal/graph"
	"cspm/internal/invdb"
	"cspm/internal/mdl"
)

// AStar is a mined attribute-star S = (Sc, SL): if the core values appear on
// a vertex, the leaf values tend to appear on its neighbours. Shorter code
// lengths mean more informative patterns (paper §IV-A).
type AStar struct {
	CoreValues []graph.AttrID
	LeafValues []graph.AttrID
	FL         int     // occurrences of this exact line
	FC         int     // frequency of the coreset in the inverted database
	CodeLen    float64 // L(Code_c) + L(Code_L) in bits (Eq. 4)
}

// Confidence is fL/fc, the empirical probability of the leafset given the
// coreset — the quantity the conditional-entropy code optimises.
func (s AStar) Confidence() float64 {
	if s.FC == 0 {
		return 0
	}
	return float64(s.FL) / float64(s.FC)
}

// Format renders the a-star with a vocabulary, e.g. ({ICDM}, {PODS EDBT}).
func (s AStar) Format(v *graph.Vocab) string {
	core := make([]string, len(s.CoreValues))
	for i, a := range s.CoreValues {
		core[i] = v.Name(a)
	}
	leaf := make([]string, len(s.LeafValues))
	for i, a := range s.LeafValues {
		leaf[i] = v.Name(a)
	}
	sort.Strings(core)
	sort.Strings(leaf)
	return fmt.Sprintf("({%s}, {%s})", strings.Join(core, " "), strings.Join(leaf, " "))
}

// IterationStat records one merge iteration for the gain-update-ratio
// analysis of Fig. 5.
type IterationStat struct {
	Iteration     int
	GainUpdates   int     // gain evaluations performed this iteration
	PossiblePairs int     // C(active leafsets, 2) at iteration start
	UpdateRatio   float64 // GainUpdates / PossiblePairs
	Gain          float64 // realised DL reduction of the applied merge
	TotalDL       float64 // DL after the merge
}

// Model is the output of a mining run: the a-stars ordered by ascending code
// length, plus run diagnostics.
type Model struct {
	Patterns []AStar
	Vocab    *graph.Vocab

	BaselineDL  float64
	FinalDL     float64
	Iterations  int
	GainEvals   int // total gain evaluations across the run
	PerIter     []IterationStat
	CondEntropy float64
}

// CompressionRatio is FinalDL/BaselineDL; lower is better.
func (m *Model) CompressionRatio() float64 {
	if m.BaselineDL == 0 {
		return 1
	}
	return m.FinalDL / m.BaselineDL
}

// TopK returns the k best-ranked (shortest-code) patterns.
func (m *Model) TopK(k int) []AStar {
	if k > len(m.Patterns) {
		k = len(m.Patterns)
	}
	return m.Patterns[:k]
}

// MultiLeaf returns only patterns whose leafset has at least two values —
// the patterns produced by at least one merge, which are the interesting
// ones for reporting (initial lines are trivially single-leaf).
func (m *Model) MultiLeaf() []AStar {
	out := make([]AStar, 0, len(m.Patterns))
	for _, p := range m.Patterns {
		if len(p.LeafValues) >= 2 {
			out = append(out, p)
		}
	}
	return out
}

// extractModel converts the final inverted database into the ranked pattern
// list. Ordering: ascending code length, then lexicographic contents so runs
// are deterministic.
func extractModel(db *invdb.DB, vocab *graph.Vocab) *Model {
	m := &Model{Vocab: vocab}
	for c := 0; c < db.NumCoresets(); c++ {
		fc := db.CoreFreq(invdb.CoresetID(c))
		for _, ln := range db.LinesOf(invdb.CoresetID(c)) {
			leaf := db.Leafsets().Values(ln.Leaf)
			m.Patterns = append(m.Patterns, AStar{
				CoreValues: db.CoreValues(invdb.CoresetID(c)),
				LeafValues: leaf,
				FL:         ln.FL(),
				FC:         fc,
				CodeLen:    db.CoreCodeLen(invdb.CoresetID(c)) + mdl.CondCodeLen(ln.FL(), fc),
			})
		}
	}
	sort.Slice(m.Patterns, func(i, j int) bool {
		a, b := m.Patterns[i], m.Patterns[j]
		if a.CodeLen != b.CodeLen {
			return a.CodeLen < b.CodeLen
		}
		if c := compareAttrs(a.CoreValues, b.CoreValues); c != 0 {
			return c < 0
		}
		return compareAttrs(a.LeafValues, b.LeafValues) < 0
	})
	m.CondEntropy = db.CondEntropy()
	return m
}

func compareAttrs(a, b []graph.AttrID) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
