// Package cspm implements the paper's contribution: the Compressing Star
// Pattern Miner (CSPM), a parameter-free algorithm that extracts
// attribute-stars from an attributed graph by greedily merging
// inverted-database leafsets under the MDL principle (paper §IV–V). Both
// variants are provided: CSPM-Basic (Algorithm 1, full candidate
// regeneration each iteration) and CSPM-Partial (Algorithms 3–4,
// incremental gain maintenance through the related-leafset dictionary).
package cspm

import (
	"fmt"
	"sort"
	"strings"

	"cspm/internal/graph"
	"cspm/internal/invdb"
	"cspm/internal/mdl"
)

// AStar is a mined attribute-star S = (Sc, SL): if the core values appear on
// a vertex, the leaf values tend to appear on its neighbours. Shorter code
// lengths mean more informative patterns (paper §IV-A).
type AStar struct {
	CoreValues []graph.AttrID
	LeafValues []graph.AttrID
	FL         int     // occurrences of this exact line
	FC         int     // frequency of the coreset in the inverted database
	CodeLen    float64 // L(Code_c) + L(Code_L) in bits (Eq. 4)
}

// Confidence is fL/fc, the empirical probability of the leafset given the
// coreset — the quantity the conditional-entropy code optimises.
func (s AStar) Confidence() float64 {
	if s.FC == 0 {
		return 0
	}
	return float64(s.FL) / float64(s.FC)
}

// Format renders the a-star with a vocabulary, e.g. ({ICDM}, {PODS EDBT}).
func (s AStar) Format(v *graph.Vocab) string {
	core := make([]string, len(s.CoreValues))
	for i, a := range s.CoreValues {
		core[i] = v.Name(a)
	}
	leaf := make([]string, len(s.LeafValues))
	for i, a := range s.LeafValues {
		leaf[i] = v.Name(a)
	}
	sort.Strings(core)
	sort.Strings(leaf)
	return fmt.Sprintf("({%s}, {%s})", strings.Join(core, " "), strings.Join(leaf, " "))
}

// IterationStat records one merge iteration for the gain-update-ratio
// analysis of Fig. 5. In a sharded run, GainUpdates, PossiblePairs and
// TotalDL describe the database the merge ran against — the shard's, not the
// global one.
type IterationStat struct {
	Iteration     int
	GainUpdates   int     // gain evaluations performed this iteration
	PossiblePairs int     // C(active leafsets, 2) at iteration start
	UpdateRatio   float64 // GainUpdates / PossiblePairs
	Gain          float64 // realised DL reduction of the applied merge
	TotalDL       float64 // DL after the merge
	// Shard is the shard that applied the merge in a MineSharded run (0 in
	// unsharded runs, -1 for the edge-cut refinement pass).
	Shard int
	// Refinement marks merges applied by the sequential refinement pass of
	// the edge-cut strategy; their summed Gain is Model.RefinementGain.
	Refinement bool
}

// Model is the output of a mining run: the a-stars ordered by ascending code
// length, plus run diagnostics.
type Model struct {
	Patterns []AStar
	Vocab    *graph.Vocab

	BaselineDL  float64
	FinalDL     float64
	Iterations  int
	GainEvals   int // total gain evaluations across the run
	PerIter     []IterationStat
	CondEntropy float64

	// ShardCount is the number of shard searches the run executed: the
	// concurrent shard count of a MineSharded run, or the number of dirty
	// component groups a MineShardedCached run re-mined (0 when every group
	// replayed from cache — check CacheHits to tell that apart from an
	// unsharded run, which reports 0 on all three cache counters).
	ShardCount int
	// RefinementGain is the DL reduction realised by the sequential
	// refinement pass of the edge-cut shard strategy (0 elsewhere).
	RefinementGain float64

	// CacheHits/CacheMisses count the component groups a MineShardedCached
	// run replayed from, respectively re-mined into, its shard cache (both 0
	// in uncached runs). CacheEvictions counts cache entries the run's
	// stores pushed out of memory.
	CacheHits      int
	CacheMisses    int
	CacheEvictions int

	// RemoteJobs counts the shard jobs a MineDistributed run dispatched
	// over its transport; RemoteRetries the re-submissions after drops,
	// timeouts, corrupt blobs or worker errors; RemoteDuplicates the
	// responses discarded because their job was already satisfied (late
	// originals, transport-level duplicates); LocalFallbacks the jobs that
	// exhausted their retries and were mined in-process instead. All 0
	// outside distributed runs.
	RemoteJobs       int
	RemoteRetries    int
	RemoteDuplicates int
	LocalFallbacks   int
}

// CompressionRatio is FinalDL/BaselineDL; lower is better.
func (m *Model) CompressionRatio() float64 {
	if m.BaselineDL == 0 {
		return 1
	}
	return m.FinalDL / m.BaselineDL
}

// TopK returns the k best-ranked (shortest-code) patterns.
func (m *Model) TopK(k int) []AStar {
	if k > len(m.Patterns) {
		k = len(m.Patterns)
	}
	return m.Patterns[:k]
}

// MultiLeaf returns only patterns whose leafset has at least two values —
// the patterns produced by at least one merge, which are the interesting
// ones for reporting (initial lines are trivially single-leaf).
func (m *Model) MultiLeaf() []AStar {
	out := make([]AStar, 0, len(m.Patterns))
	for _, p := range m.Patterns {
		if len(p.LeafValues) >= 2 {
			out = append(out, p)
		}
	}
	return out
}

// extractPatterns converts a database's live lines into unranked a-stars.
func extractPatterns(db *invdb.DB) []AStar {
	var out []AStar
	for c := 0; c < db.NumCoresets(); c++ {
		fc := db.CoreFreq(invdb.CoresetID(c))
		for _, ln := range db.LinesOf(invdb.CoresetID(c)) {
			leaf := db.Leafsets().Values(ln.Leaf)
			out = append(out, AStar{
				CoreValues: db.CoreValues(invdb.CoresetID(c)),
				LeafValues: leaf,
				FL:         ln.FL(),
				FC:         fc,
				CodeLen:    db.CoreCodeLen(invdb.CoresetID(c)) + mdl.CondCodeLen(ln.FL(), fc),
			})
		}
	}
	return out
}

// sortPatterns ranks patterns: ascending code length, then lexicographic
// contents. The order is total over distinct (core, leafset) pairs, so runs
// — sharded or not — are deterministic.
func sortPatterns(ps []AStar) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		if a.CodeLen != b.CodeLen {
			return a.CodeLen < b.CodeLen
		}
		if c := graph.CompareAttrs(a.CoreValues, b.CoreValues); c != 0 {
			return c < 0
		}
		return graph.CompareAttrs(a.LeafValues, b.LeafValues) < 0
	})
}

// extractModel converts the final inverted database into the ranked pattern
// list, pricing FinalDL and CondEntropy through the canonical summation
// order (a pure function of the line multiset — see invdb.CanonicalDL).
func extractModel(db *invdb.DB, vocab *graph.Vocab) *Model {
	m := &Model{Vocab: vocab, Patterns: extractPatterns(db)}
	sortPatterns(m.Patterns)
	fd, fm, cond := invdb.CanonicalSummary(db.StandardTable(), db.CoreCodeLen, db.AppendLineStats(nil))
	m.FinalDL = fd + fm
	m.CondEntropy = cond
	return m
}
