package cspm

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cspm/internal/graph"
)

// goldenPath is the checked-in serialization of Mine(fig1). The fixture pins
// the on-disk model format AND the mined values: any drift in the JSON
// layout, the DL accounting, or the fig1 search fails this test loudly.
// Regenerate deliberately with:
//
//	UPDATE_GOLDEN=1 go test ./internal/cspm -run TestModelJSONGolden
const goldenPath = "testdata/golden_model.json"

// goldenGraph is fig1 with a deterministic construction order: attribute
// values are interned in a fixed sequence so vocabulary ids — and with them
// the byte-exact JSON pattern order — are identical across processes. (fig1
// itself ranges over a map, which deliberately shuffles interning order and
// would make a byte-level golden comparison flaky.)
func goldenGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(5)
	for _, va := range []struct {
		v    graph.VertexID
		vals []string
	}{
		{0, []string{"a"}}, {1, []string{"a", "c"}}, {2, []string{"c"}},
		{3, []string{"b"}}, {4, []string{"a", "b"}},
	} {
		for _, val := range va.vals {
			if err := b.AddAttr(va.v, val); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range [][2]graph.VertexID{{0, 1}, {0, 2}, {0, 3}, {2, 4}, {3, 4}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestModelJSONGolden(t *testing.T) {
	g := goldenGraph(t)
	m := Mine(g)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden fixture rewritten (%d bytes)", buf.Len())
		return
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Fatalf("serialized model drifted from %s.\nIf the change is intentional, regenerate with UPDATE_GOLDEN=1.\ngot:\n%s\nwant:\n%s",
			goldenPath, buf.Bytes(), golden)
	}
	// The checked-in bytes must round-trip through both vocabulary modes.
	for _, mode := range []string{"shared", "fresh"} {
		vocab := g.Vocab()
		if mode == "fresh" {
			vocab = nil
		}
		m2, err := ReadJSON(bytes.NewReader(golden), vocab)
		if err != nil {
			t.Fatalf("%s vocab: %v", mode, err)
		}
		renderWith := m2.Vocab
		if len(m2.Patterns) != len(m.Patterns) {
			t.Fatalf("%s vocab: %d patterns, want %d", mode, len(m2.Patterns), len(m.Patterns))
		}
		for i := range m.Patterns {
			a, b := m.Patterns[i], m2.Patterns[i]
			if a.Format(g.Vocab()) != b.Format(renderWith) {
				t.Fatalf("%s vocab: pattern %d renders %q, want %q",
					mode, i, b.Format(renderWith), a.Format(g.Vocab()))
			}
			if a.FL != b.FL || a.FC != b.FC {
				t.Fatalf("%s vocab: pattern %d frequencies changed: %+v vs %+v", mode, i, b, a)
			}
			if math.Float64bits(a.Confidence()) != math.Float64bits(b.Confidence()) {
				t.Fatalf("%s vocab: pattern %d confidence %v != %v", mode, i, b.Confidence(), a.Confidence())
			}
			if math.Float64bits(a.CodeLen) != math.Float64bits(b.CodeLen) {
				t.Fatalf("%s vocab: pattern %d code length %v != %v", mode, i, b.CodeLen, a.CodeLen)
			}
		}
		if !sameF64(m2.BaselineDL, m.BaselineDL) || !sameF64(m2.FinalDL, m.FinalDL) || !sameF64(m2.CondEntropy, m.CondEntropy) {
			t.Fatalf("%s vocab: DL metadata drifted", mode)
		}
	}
}

func sameF64(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func TestModelJSONRoundTrip(t *testing.T) {
	g := fig1(t)
	m := Mine(g)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadJSON(&buf, g.Vocab())
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Patterns) != len(m.Patterns) {
		t.Fatalf("pattern count %d != %d", len(m2.Patterns), len(m.Patterns))
	}
	for i := range m.Patterns {
		a, b := m.Patterns[i], m2.Patterns[i]
		if a.Format(g.Vocab()) != b.Format(g.Vocab()) || a.FL != b.FL || a.FC != b.FC || a.CodeLen != b.CodeLen {
			t.Fatalf("pattern %d changed: %+v vs %+v", i, a, b)
		}
	}
	if m2.FinalDL != m.FinalDL || m2.BaselineDL != m.BaselineDL {
		t.Fatal("DL metadata lost")
	}
}

func TestModelJSONFreshVocab(t *testing.T) {
	g := fig1(t)
	m := Mine(g)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Load into a nil vocab: names intern fresh but formats must agree.
	m2, err := ReadJSON(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Patterns {
		if m.Patterns[i].Format(g.Vocab()) != m2.Patterns[i].Format(m2.Vocab) {
			t.Fatalf("pattern %d renders differently under fresh vocab", i)
		}
	}
}

func TestModelJSONValidation(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json"), nil); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"version":99}`), nil); err == nil {
		t.Error("future version accepted")
	}
	bad := `{"version":1,"patterns":[{"core":["a"],"leaf":[],"fl":1,"fc":1}]}`
	if _, err := ReadJSON(strings.NewReader(bad), nil); err == nil {
		t.Error("empty leaf accepted")
	}
	badFreq := `{"version":1,"patterns":[{"core":["a"],"leaf":["b"],"fl":5,"fc":2}]}`
	if _, err := ReadJSON(strings.NewReader(badFreq), nil); err == nil {
		t.Error("fL > fc accepted")
	}
	noVocab := &Model{}
	if err := noVocab.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Error("vocabulary-less model serialised")
	}
}

func TestStepperMatchesMine(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomGraph(rng, 40, 6, 0.14, 0.4)
	whole := MineWithOptions(g, Options{CollectStats: true})

	s := NewStepper(g, Options{})
	steps := 0
	prevDL := s.BaselineDL()
	for {
		res, ok := s.Step()
		if !ok {
			break
		}
		steps++
		if res.Gain <= 0 {
			t.Fatalf("step %d applied non-positive gain %v", steps, res.Gain)
		}
		if res.TotalDL > prevDL {
			t.Fatalf("step %d increased DL", steps)
		}
		prevDL = res.TotalDL
		if len(res.NewLeafset) < 2 {
			t.Fatalf("step %d produced leafset of size %d", steps, len(res.NewLeafset))
		}
	}
	if !s.Done() {
		t.Fatal("Done false after exhaustion")
	}
	if _, ok := s.Step(); ok {
		t.Fatal("Step after done returned a merge")
	}
	final := s.Snapshot()
	if final.FinalDL != whole.FinalDL {
		t.Fatalf("stepper DL %v != Mine DL %v", final.FinalDL, whole.FinalDL)
	}
	if steps != whole.Iterations {
		t.Fatalf("stepper did %d merges, Mine did %d", steps, whole.Iterations)
	}
	if len(final.Patterns) != len(whole.Patterns) {
		t.Fatal("pattern sets differ")
	}
}

func TestStepperAnytimeSnapshot(t *testing.T) {
	g := fig1(t)
	s := NewStepper(g, Options{})
	if _, ok := s.Step(); !ok {
		t.Fatal("fig1 should allow at least one merge")
	}
	mid := s.Snapshot()
	if mid.FinalDL >= mid.BaselineDL {
		t.Fatal("snapshot after one merge should compress")
	}
	if mid.Iterations != 1 {
		t.Fatalf("Iterations = %d, want 1", mid.Iterations)
	}
	// The snapshot is independent of further steps.
	for {
		if _, ok := s.Step(); !ok {
			break
		}
	}
	if mid.Iterations != 1 {
		t.Fatal("snapshot mutated by later steps")
	}
}

func TestSortAttrs(t *testing.T) {
	a := []graph.AttrID{3, 1, 2}
	sortAttrs(a)
	if a[0] != 1 || a[1] != 2 || a[2] != 3 {
		t.Fatalf("sortAttrs = %v", a)
	}
}
