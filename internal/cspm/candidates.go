package cspm

import (
	"container/heap"

	"cspm/internal/invdb"
)

// pairKey packs an unordered leafset pair into one comparable key.
func pairKey(a, b invdb.LeafsetID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func unpackPair(k uint64) (invdb.LeafsetID, invdb.LeafsetID) {
	return invdb.LeafsetID(uint32(k >> 32)), invdb.LeafsetID(uint32(k))
}

// candEntry is a heap entry; seq invalidates superseded entries lazily.
type candEntry struct {
	key  uint64
	gain float64
	seq  uint64
}

type candHeap []candEntry

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].key < h[j].key // deterministic tie-break
}
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(candEntry)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// candidateSet is the priority queue of leafset pairs with positive gain,
// with lazy deletion: the map holds the live (gain, seq) per pair, the heap
// may hold stale entries that are skipped on pop.
type candidateSet struct {
	heap candHeap
	live map[uint64]candEntry
	seq  uint64
}

func newCandidateSet() *candidateSet {
	return &candidateSet{live: make(map[uint64]candEntry)}
}

func (cs *candidateSet) Len() int { return len(cs.live) }

// Set inserts or updates the pair's gain.
func (cs *candidateSet) Set(a, b invdb.LeafsetID, gain float64) {
	cs.seq++
	e := candEntry{key: pairKey(a, b), gain: gain, seq: cs.seq}
	cs.live[e.key] = e
	heap.Push(&cs.heap, e)
}

// Remove drops the pair if present.
func (cs *candidateSet) Remove(a, b invdb.LeafsetID) {
	delete(cs.live, pairKey(a, b))
}

// Contains reports whether the pair is live.
func (cs *candidateSet) Contains(a, b invdb.LeafsetID) bool {
	_, ok := cs.live[pairKey(a, b)]
	return ok
}

// PeekGain reports the largest live gain without removing it, discarding
// stale heap prefixes on the way.
func (cs *candidateSet) PeekGain() (float64, bool) {
	for cs.heap.Len() > 0 {
		e := cs.heap[0]
		cur, live := cs.live[e.key]
		if live && cur.seq == e.seq {
			return e.gain, true
		}
		heap.Pop(&cs.heap)
	}
	return 0, false
}

// PopMax removes and returns the live pair with the largest gain.
func (cs *candidateSet) PopMax() (a, b invdb.LeafsetID, gain float64, ok bool) {
	for cs.heap.Len() > 0 {
		e := heap.Pop(&cs.heap).(candEntry)
		cur, live := cs.live[e.key]
		if !live || cur.seq != e.seq {
			continue // stale entry superseded by Set/Remove
		}
		delete(cs.live, e.key)
		a, b = unpackPair(e.key)
		return a, b, e.gain, true
	}
	return 0, 0, 0, false
}
