package cspm

import (
	"encoding/json"
	"fmt"
	"io"

	"cspm/internal/graph"
)

// The on-disk model format stores patterns by attribute-value name so a
// model mined in one process can score graphs with independently built
// vocabularies. The format is versioned for forward compatibility.

const modelFormatVersion = 1

type modelJSON struct {
	Version     int           `json:"version"`
	BaselineDL  float64       `json:"baseline_dl"`
	FinalDL     float64       `json:"final_dl"`
	Iterations  int           `json:"iterations"`
	CondEntropy float64       `json:"cond_entropy"`
	Patterns    []patternJSON `json:"patterns"`
}

type patternJSON struct {
	Core    []string `json:"core"`
	Leaf    []string `json:"leaf"`
	FL      int      `json:"fl"`
	FC      int      `json:"fc"`
	CodeLen float64  `json:"code_len"`
}

// WriteJSON serialises the model. The model must carry a vocabulary (models
// produced by Mine/MineWithOptions/MineDB with a non-nil vocab do).
func (m *Model) WriteJSON(w io.Writer) error {
	if m.Vocab == nil {
		return fmt.Errorf("cspm: model has no vocabulary; cannot serialise by name")
	}
	out := modelJSON{
		Version:     modelFormatVersion,
		BaselineDL:  m.BaselineDL,
		FinalDL:     m.FinalDL,
		Iterations:  m.Iterations,
		CondEntropy: m.CondEntropy,
	}
	for _, p := range m.Patterns {
		pj := patternJSON{FL: p.FL, FC: p.FC, CodeLen: p.CodeLen}
		for _, a := range p.CoreValues {
			pj.Core = append(pj.Core, m.Vocab.Name(a))
		}
		for _, a := range p.LeafValues {
			pj.Leaf = append(pj.Leaf, m.Vocab.Name(a))
		}
		out.Patterns = append(out.Patterns, pj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON deserialises a model, interning pattern values into vocab (which
// may be an existing graph's vocabulary — values already present keep their
// ids, new ones are added).
func ReadJSON(r io.Reader, vocab *graph.Vocab) (*Model, error) {
	var in modelJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("cspm: decoding model: %w", err)
	}
	if in.Version != modelFormatVersion {
		return nil, fmt.Errorf("cspm: unsupported model format version %d (want %d)", in.Version, modelFormatVersion)
	}
	if vocab == nil {
		vocab = graph.NewVocab()
	}
	m := &Model{
		Vocab:       vocab,
		BaselineDL:  in.BaselineDL,
		FinalDL:     in.FinalDL,
		Iterations:  in.Iterations,
		CondEntropy: in.CondEntropy,
	}
	for i, pj := range in.Patterns {
		if len(pj.Leaf) == 0 || len(pj.Core) == 0 {
			return nil, fmt.Errorf("cspm: pattern %d has empty core or leaf", i)
		}
		if pj.FL < 0 || pj.FC < pj.FL {
			return nil, fmt.Errorf("cspm: pattern %d has inconsistent frequencies fL=%d fc=%d", i, pj.FL, pj.FC)
		}
		p := AStar{FL: pj.FL, FC: pj.FC, CodeLen: pj.CodeLen}
		for _, n := range pj.Core {
			p.CoreValues = append(p.CoreValues, vocab.ID(n))
		}
		for _, n := range pj.Leaf {
			p.LeafValues = append(p.LeafValues, vocab.ID(n))
		}
		sortAttrs(p.CoreValues)
		sortAttrs(p.LeafValues)
		m.Patterns = append(m.Patterns, p)
	}
	return m, nil
}

func sortAttrs(a []graph.AttrID) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
