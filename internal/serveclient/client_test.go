package serveclient_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cspm/internal/graph"
	"cspm/internal/serve"
	"cspm/internal/serveclient"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(4)
	for v, vals := range [][]string{{"smoker"}, {"smoker", "cancer"}, {"cancer"}, {"smoker"}} {
		for _, val := range vals {
			if err := b.AddAttr(graph.VertexID(v), val); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range [][2]graph.VertexID{{0, 1}, {1, 2}, {2, 3}, {0, 2}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// startHost spins a multi-tenant host with one "alpha" tenant behind real
// HTTP and returns a client for it.
func startHost(t *testing.T) (*serve.Host, *serveclient.Client) {
	t.Helper()
	h, err := serve.NewHost(serve.HostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	if _, err := h.Create("alpha", testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	c, err := serveclient.New(hs.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	return h, c
}

func ctxShort(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestNewRejectsBadBaseURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "localhost:8080/nope"} {
		if _, err := serveclient.New(bad, nil); err == nil {
			t.Errorf("New(%q) accepted a base URL without scheme://host", bad)
		}
	}
}

func TestClientFullSurface(t *testing.T) {
	_, c := startHost(t)
	ctx := ctxShort(t)
	ns := c.Namespace("alpha")

	pats, err := ns.Patterns(ctx, serveclient.PatternsOptions{Limit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if pats.Generation != 1 || pats.Total == 0 || len(pats.Patterns) != pats.Total {
		t.Fatalf("patterns = %+v, want generation 1 with the full list", pats)
	}
	paged, err := ns.Patterns(ctx, serveclient.PatternsOptions{Offset: 1, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if paged.Offset != 1 || paged.Limit != 1 {
		t.Fatalf("pagination not forwarded: %+v", paged)
	}

	comp, err := ns.Complete(ctx, serve.CompleteRequest{Vertices: []graph.VertexID{0}, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Results) != 1 || comp.Results[0].Vertex != 0 || len(comp.Results[0].Values) == 0 {
		t.Fatalf("complete = %+v, want scored values for vertex 0", comp)
	}

	model, err := ns.Model(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if model.Vertices != 4 || model.Generation != 1 {
		t.Fatalf("model = %+v, want 4 vertices at generation 1", model)
	}

	health, err := ns.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Fatalf("health = %+v", health)
	}

	ack, err := ns.Mutate(ctx, []serve.Mutation{{Op: serve.OpAddEdge, U: 0, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 1 {
		t.Fatalf("mutate ack = %+v, want 1 accepted", ack)
	}
	watch, err := ns.AwaitGeneration(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if watch.Generation < 2 || watch.ModelSHA256 == "" {
		t.Fatalf("await = %+v, want generation >= 2 with a commitment", watch)
	}

	met, err := ns.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if met.MutationsAccepted != 1 || met.Remines == 0 {
		t.Fatalf("metrics = mutations %d remines %d, want 1 and >0", met.MutationsAccepted, met.Remines)
	}
}

func TestClientAdminLifecycle(t *testing.T) {
	_, c := startHost(t)
	ctx := ctxShort(t)

	infos, err := c.ListNamespaces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "alpha" {
		t.Fatalf("list = %+v, want [alpha]", infos)
	}

	created, err := c.CreateNamespace(ctx, "beta", nil)
	if err != nil {
		t.Fatal(err)
	}
	if created.Name != "beta" || created.Generation != 1 || created.Vertices != 0 {
		t.Fatalf("created = %+v, want empty beta at generation 1", created)
	}

	info, err := c.NamespaceInfo(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if info.Vertices != 4 || info.ModelSHA256 == "" {
		t.Fatalf("info = %+v", info)
	}

	del, err := c.DeleteNamespace(ctx, "beta")
	if err != nil {
		t.Fatal(err)
	}
	if del.Name != "beta" || del.QuarantinedTo != "" {
		t.Fatalf("delete of a memory-only tenant = %+v, want no quarantine path", del)
	}
	if _, err := c.NamespaceInfo(ctx, "beta"); !serveclient.HasCode(err, serve.CodeNamespaceNotFound) {
		t.Fatalf("info after delete = %v, want %s", err, serve.CodeNamespaceNotFound)
	}
}

// TestClientErrorMapping: every envelope the server emits surfaces as a
// typed *APIError the caller can branch on with HasCode.
func TestClientErrorMapping(t *testing.T) {
	_, c := startHost(t)
	ctx := ctxShort(t)

	cases := []struct {
		name       string
		call       func() error
		wantStatus int
		wantCode   string
	}{
		{"namespace not found", func() error {
			_, err := c.Namespace("ghost").Model(ctx)
			return err
		}, http.StatusNotFound, serve.CodeNamespaceNotFound},
		{"duplicate create", func() error {
			_, err := c.CreateNamespace(ctx, "alpha", nil)
			return err
		}, http.StatusConflict, serve.CodeNamespaceExists},
		{"invalid name", func() error {
			_, err := c.CreateNamespace(ctx, "Not-Valid-NAME", nil)
			return err
		}, http.StatusBadRequest, serve.CodeBadRequest},
		{"bad graph upload", func() error {
			_, err := c.CreateNamespace(ctx, "fresh", []byte("not a graph"))
			return err
		}, http.StatusBadRequest, serve.CodeBadRequest},
		{"delete unknown", func() error {
			_, err := c.DeleteNamespace(ctx, "ghost")
			return err
		}, http.StatusNotFound, serve.CodeNamespaceNotFound},
		{"invalid mutation", func() error {
			_, err := c.Namespace("alpha").Mutate(ctx, []serve.Mutation{{Op: "bogus"}})
			return err
		}, http.StatusBadRequest, serve.CodeBadRequest},
		{"bad complete", func() error {
			_, err := c.Namespace("alpha").Complete(ctx, serve.CompleteRequest{})
			return err
		}, http.StatusBadRequest, serve.CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if err == nil {
				t.Fatal("call succeeded, want an API error")
			}
			if !serveclient.HasCode(err, tc.wantCode) {
				t.Fatalf("error = %v, want code %s", err, tc.wantCode)
			}
			ae, ok := err.(*serveclient.APIError)
			if !ok {
				t.Fatalf("error type %T, want *APIError", err)
			}
			if ae.StatusCode != tc.wantStatus {
				t.Errorf("status %d, want %d", ae.StatusCode, tc.wantStatus)
			}
			if !strings.Contains(ae.Error(), tc.wantCode) {
				t.Errorf("Error() = %q does not name the code", ae.Error())
			}
		})
	}
	if serveclient.HasCode(context.Canceled, serve.CodeBadRequest) {
		t.Error("HasCode matched a non-API error")
	}
}

// TestClientV1AliasSurface: the same typed client drives the deprecated
// flat surface, observing identical payloads to the default namespace.
func TestClientV1AliasSurface(t *testing.T) {
	h, c := startHost(t)
	ctx := ctxShort(t)
	if _, err := h.Create(serve.DefaultNamespace, testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	v1, err := c.V1().Model(ctx)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := c.Namespace(serve.DefaultNamespace).Model(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("alias model %+v diverges from default namespace model %+v", v1, v2)
	}
}

// TestClientCreateFromGraphUpload round-trips a graph through the text
// format and the admin surface.
func TestClientCreateFromGraphUpload(t *testing.T) {
	_, c := startHost(t)
	ctx := ctxShort(t)
	var buf strings.Builder
	if err := graph.Write(&buf, testGraph(t)); err != nil {
		t.Fatal(err)
	}
	info, err := c.CreateNamespace(ctx, "uploaded", []byte(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if info.Vertices != 4 || info.Edges != 4 || info.Generation != 1 {
		t.Fatalf("uploaded info = %+v, want 4 vertices / 4 edges at generation 1", info)
	}
	comp, err := c.Namespace("uploaded").Complete(ctx, serve.CompleteRequest{Vertices: []graph.VertexID{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Results) != 1 {
		t.Fatalf("uploaded namespace does not serve: %+v", comp)
	}
}
