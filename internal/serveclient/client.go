// Package serveclient is the typed Go client of the cspm serving API: the
// /v2/graphs/{ns} multi-tenant surface plus the deprecated flat /v1 alias.
// It is the only way in-repo code (e2e tests, load generators, benchmarks)
// talks to a serving process, so drift between the wire contract and its
// consumers shows up here, at compile time, instead of in skewed JSON.
//
// The wire types themselves live in package serve — the client reuses them
// rather than re-declaring near-identical structs that could diverge.
package serveclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"cspm/internal/serve"
)

// APIError is a non-2xx response decoded from the server's unified error
// envelope. Code carries the stable machine code (serve.Code*); branch on
// it with HasCode rather than parsing Message.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serveclient: %d %s: %s", e.StatusCode, e.Code, e.Message)
}

// HasCode reports whether err is an APIError carrying the given envelope
// code.
func HasCode(err error, code string) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == code
}

// Client talks to one serving process. The zero value is not usable; New
// validates the base URL once so request paths never re-parse it.
type Client struct {
	base *url.URL
	hc   *http.Client
}

// New builds a client for baseURL (scheme://host:port, no path). hc nil
// uses http.DefaultClient; pass a dedicated client to control timeouts and
// connection pooling (watch long-polls need a generous or absent client
// timeout).
func New(baseURL string, hc *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("serveclient: parse base URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("serveclient: base URL %q must be scheme://host[:port]", baseURL)
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: u, hc: hc}, nil
}

// Namespace scopes the client to /v2/graphs/{ns}.
func (c *Client) Namespace(ns string) *NamespaceClient {
	return &NamespaceClient{c: c, prefix: "/v2/graphs/" + url.PathEscape(ns)}
}

// V1 scopes the client to the deprecated flat /v1 surface (the alias of the
// "default" namespace on a multi-tenant host, or the whole API of a
// single-tenant server).
func (c *Client) V1() *NamespaceClient {
	return &NamespaceClient{c: c, prefix: "/v1"}
}

// CreateNamespace registers ns serving the uploaded graph text (nil/empty =
// an empty graph) and returns its directory entry; the server's initial
// mine has completed by the time this returns.
func (c *Client) CreateNamespace(ctx context.Context, ns string, graphText []byte) (serve.NamespaceInfo, error) {
	var out serve.NamespaceInfo
	err := c.do(ctx, http.MethodPost, "/v2/graphs/"+url.PathEscape(ns), graphText, &out)
	return out, err
}

// ListNamespaces returns every live namespace, sorted by name.
func (c *Client) ListNamespaces(ctx context.Context) ([]serve.NamespaceInfo, error) {
	var out serve.NamespacesResponse
	if err := c.do(ctx, http.MethodGet, "/v2/graphs", nil, &out); err != nil {
		return nil, err
	}
	return out.Namespaces, nil
}

// NamespaceInfo returns one namespace's directory entry.
func (c *Client) NamespaceInfo(ctx context.Context, ns string) (serve.NamespaceInfo, error) {
	var out serve.NamespaceInfo
	err := c.do(ctx, http.MethodGet, "/v2/graphs/"+url.PathEscape(ns), nil, &out)
	return out, err
}

// DeleteNamespace unregisters ns; the response names where its on-disk
// state was quarantined (deletes never unlink acknowledged WAL data).
func (c *Client) DeleteNamespace(ctx context.Context, ns string) (serve.DeleteNamespaceResponse, error) {
	var out serve.DeleteNamespaceResponse
	err := c.do(ctx, http.MethodDelete, "/v2/graphs/"+url.PathEscape(ns), nil, &out)
	return out, err
}

// do runs one request: body nil sends no payload, []byte sends it raw, any
// other value is JSON-encoded. A 2xx decodes into out (out nil discards);
// anything else decodes the error envelope into an *APIError.
func (c *Client) do(ctx context.Context, method, path string, body any, out any) error {
	return c.doHeaders(ctx, method, path, nil, body, out)
}

// doHeaders is do with extra request headers.
func (c *Client) doHeaders(ctx context.Context, method, path string, hdr http.Header, body any, out any) error {
	var rd io.Reader
	switch b := body.(type) {
	case nil:
	case []byte:
		rd = bytes.NewReader(b)
	default:
		enc, err := json.Marshal(b)
		if err != nil {
			return fmt.Errorf("serveclient: encode request: %w", err)
		}
		rd = bytes.NewReader(enc)
	}
	u := *c.base
	parsed, err := url.Parse(path)
	if err != nil {
		return fmt.Errorf("serveclient: bad path %q: %w", path, err)
	}
	u.Path = parsed.Path
	u.RawQuery = parsed.RawQuery
	req, err := http.NewRequestWithContext(ctx, method, u.String(), rd)
	if err != nil {
		return fmt.Errorf("serveclient: build request: %w", err)
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("serveclient: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var env serve.ErrorJSON
		if derr := json.NewDecoder(resp.Body).Decode(&env); derr != nil || env.Code == "" {
			return &APIError{StatusCode: resp.StatusCode, Code: "unknown",
				Message: fmt.Sprintf("%s %s: undecodable error body", method, path)}
		}
		return &APIError{StatusCode: resp.StatusCode, Code: env.Code, Message: env.Error}
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("serveclient: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// NamespaceClient is the per-tenant API surface, scoped to either a
// /v2/graphs/{ns} mount or the flat /v1 alias.
type NamespaceClient struct {
	c      *Client
	prefix string
}

// PatternsOptions selects a page of the ranked pattern list. Zero values
// take the server defaults (offset 0, limit 50).
type PatternsOptions struct {
	Offset    int
	Limit     int
	MultiLeaf bool
}

// Patterns fetches one page of the served snapshot's ranked patterns.
func (n *NamespaceClient) Patterns(ctx context.Context, opts PatternsOptions) (serve.PatternsResponse, error) {
	q := url.Values{}
	if opts.Offset > 0 {
		q.Set("offset", strconv.Itoa(opts.Offset))
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	if opts.MultiLeaf {
		q.Set("multileaf", "1")
	}
	path := n.prefix + "/patterns"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out serve.PatternsResponse
	err := n.c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Complete scores attribute completions for the requested vertices.
func (n *NamespaceClient) Complete(ctx context.Context, req serve.CompleteRequest) (serve.CompleteResponse, error) {
	var out serve.CompleteResponse
	err := n.c.do(ctx, http.MethodPost, n.prefix+"/complete", req, &out)
	return out, err
}

// Model fetches the served model's summary statistics.
func (n *NamespaceClient) Model(ctx context.Context) (serve.ModelResponse, error) {
	var out serve.ModelResponse
	err := n.c.do(ctx, http.MethodGet, n.prefix+"/model", nil, &out)
	return out, err
}

// Healthz fetches the tenant's health summary.
func (n *NamespaceClient) Healthz(ctx context.Context) (serve.HealthResponse, error) {
	var out serve.HealthResponse
	err := n.c.do(ctx, http.MethodGet, n.prefix+"/healthz", nil, &out)
	return out, err
}

// Metrics fetches the tenant's counters and latency histograms.
func (n *NamespaceClient) Metrics(ctx context.Context) (serve.MetricsSnapshot, error) {
	var out serve.MetricsSnapshot
	err := n.c.do(ctx, http.MethodGet, n.prefix+"/metrics", nil, &out)
	return out, err
}

// Mutate submits one mutation batch; the ack names the backlog and the
// generation still being served (re-mining is asynchronous — use Watch to
// observe the fold).
func (n *NamespaceClient) Mutate(ctx context.Context, muts []serve.Mutation) (serve.MutationsResponse, error) {
	return n.MutateTraced(ctx, muts, "")
}

// MutateTraced is Mutate with a caller-chosen X-Request-Id trace ID ("" lets
// the server mint one); the ack echoes the ID in TraceID and names the
// batch's WAL sequence in Batch — the handle /debug/trace/{seq} queries.
func (n *NamespaceClient) MutateTraced(ctx context.Context, muts []serve.Mutation, traceID string) (serve.MutationsResponse, error) {
	var hdr http.Header
	if traceID != "" {
		hdr = http.Header{"X-Request-Id": {traceID}}
	}
	var out serve.MutationsResponse
	err := n.c.doHeaders(ctx, http.MethodPost, n.prefix+"/mutations", hdr, serve.MutationsRequest{Mutations: muts}, &out)
	return out, err
}

// Watch long-polls until a snapshot with Generation >= generation is
// published, the server-side timeout elapses, or the server drains (the
// latter two answer the CURRENT state with TimedOut=true). timeout zero
// takes the server default.
func (n *NamespaceClient) Watch(ctx context.Context, generation uint64, timeout time.Duration) (serve.WatchResponse, error) {
	q := url.Values{}
	if generation > 0 {
		q.Set("generation", strconv.FormatUint(generation, 10))
	}
	if timeout > 0 {
		q.Set("timeout_ms", strconv.FormatInt(timeout.Milliseconds(), 10))
	}
	path := n.prefix + "/watch"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out serve.WatchResponse
	err := n.c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// ReplicationStatus fetches the tenant's replication role, served
// generation, fold position and WAL position. Works for every role —
// standalones answer too — so fleet tooling can probe any member.
func (n *NamespaceClient) ReplicationStatus(ctx context.Context) (serve.ReplicationStatusResponse, error) {
	var out serve.ReplicationStatusResponse
	err := n.c.do(ctx, http.MethodGet, n.prefix+"/replication/status", nil, &out)
	return out, err
}

// Promote turns a follower tenant into a leader (replaying every mirrored
// unfolded batch first). Only meaningful against a replica host; anything
// else answers 409 not_follower.
func (n *NamespaceClient) Promote(ctx context.Context) (serve.PromoteResponse, error) {
	var out serve.PromoteResponse
	err := n.c.do(ctx, http.MethodPost, n.prefix+"/replication/promote", nil, &out)
	return out, err
}

// Trace fetches the recorded lifecycle of batch seq on this server (the
// leader's WAL sequence number, which followers index their mirror traces
// under too — so the same seq joins the story across fleet roles). A batch
// never submitted here, or evicted from the bounded ring, answers 404
// trace_not_found.
func (n *NamespaceClient) Trace(ctx context.Context, seq uint64) (serve.TraceResponse, error) {
	var out serve.TraceResponse
	err := n.c.do(ctx, http.MethodGet, n.prefix+"/debug/trace/"+strconv.FormatUint(seq, 10), nil, &out)
	return out, err
}

// Remines fetches the tenant's recent re-mine stage profiles, newest first.
func (n *NamespaceClient) Remines(ctx context.Context) (serve.ReminesResponse, error) {
	var out serve.ReminesResponse
	err := n.c.do(ctx, http.MethodGet, n.prefix+"/debug/remines", nil, &out)
	return out, err
}

// AwaitGeneration polls Watch until the served generation reaches gen or
// ctx expires — the client-side twin of serve.Server.AwaitGeneration for
// tests and deploy scripts that need "the fold landed" as a blocking call.
func (n *NamespaceClient) AwaitGeneration(ctx context.Context, gen uint64) (serve.WatchResponse, error) {
	for {
		w, err := n.Watch(ctx, gen, 0)
		if err != nil {
			return w, err
		}
		if w.Generation >= gen {
			return w, nil
		}
		if err := ctx.Err(); err != nil {
			return w, fmt.Errorf("serveclient: awaiting generation %d (at %d): %w", gen, w.Generation, err)
		}
	}
}
