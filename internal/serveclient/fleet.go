package serveclient

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"cspm/internal/serve"
)

// Fleet is a client over a replicated serve fleet: one leader plus any
// number of read replicas. Reads round-robin across the replicas (falling
// back to the leader when every replica is down); writes — mutations,
// namespace admin, promote — always go to the leader. Replication is
// asynchronous, so a replica read may trail the leader by a generation;
// every response names the generation it came from.
type Fleet struct {
	leader   *Client
	replicas []*Client
	next     atomic.Uint64
}

// NewFleet builds a fleet client. leaderURL is required; replicaURLs may be
// empty (reads then go to the leader too). hc nil uses http.DefaultClient
// for every member.
func NewFleet(leaderURL string, replicaURLs []string, hc *http.Client) (*Fleet, error) {
	leader, err := New(leaderURL, hc)
	if err != nil {
		return nil, err
	}
	f := &Fleet{leader: leader}
	for _, u := range replicaURLs {
		r, err := New(u, hc)
		if err != nil {
			return nil, err
		}
		f.replicas = append(f.replicas, r)
	}
	return f, nil
}

// Leader returns the write-side client.
func (f *Fleet) Leader() *Client { return f.leader }

// Replicas returns the read-side clients in configuration order, for
// tooling that must address one member (health probes, promote).
func (f *Fleet) Replicas() []*Client { return f.replicas }

// Namespace scopes the fleet to one namespace on every member.
func (f *Fleet) Namespace(ns string) *FleetNamespace {
	fn := &FleetNamespace{f: f, leader: f.leader.Namespace(ns)}
	for _, r := range f.replicas {
		fn.replicas = append(fn.replicas, r.Namespace(ns))
	}
	return fn
}

// FleetNamespace is the per-namespace fleet surface: replica-balanced reads,
// leader writes.
type FleetNamespace struct {
	f        *Fleet
	leader   *NamespaceClient
	replicas []*NamespaceClient
}

// read tries each replica once starting at the round-robin cursor, then the
// leader. Only TRANSPORT failures fail over: an *APIError means a member
// answered, and re-asking another member would mask real rejections (a 400
// is a 400 no matter who answers it).
func (f *FleetNamespace) read(call func(*NamespaceClient) error) error {
	if len(f.replicas) == 0 {
		return call(f.leader)
	}
	start := int(f.f.next.Add(1))
	var firstErr error
	for i := range f.replicas {
		r := f.replicas[(start+i)%len(f.replicas)]
		err := call(r)
		var ae *APIError
		if err == nil || errors.As(err, &ae) {
			return err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if err := call(f.leader); err == nil {
		return nil
	}
	return fmt.Errorf("serveclient: every fleet member failed, first replica error: %w", firstErr)
}

// Patterns fetches one page of ranked patterns from a replica.
func (f *FleetNamespace) Patterns(ctx context.Context, opts PatternsOptions) (serve.PatternsResponse, error) {
	var out serve.PatternsResponse
	err := f.read(func(n *NamespaceClient) error {
		var e error
		out, e = n.Patterns(ctx, opts)
		return e
	})
	return out, err
}

// Complete scores attribute completions on a replica.
func (f *FleetNamespace) Complete(ctx context.Context, req serve.CompleteRequest) (serve.CompleteResponse, error) {
	var out serve.CompleteResponse
	err := f.read(func(n *NamespaceClient) error {
		var e error
		out, e = n.Complete(ctx, req)
		return e
	})
	return out, err
}

// Model fetches the served model summary from a replica.
func (f *FleetNamespace) Model(ctx context.Context) (serve.ModelResponse, error) {
	var out serve.ModelResponse
	err := f.read(func(n *NamespaceClient) error {
		var e error
		out, e = n.Model(ctx)
		return e
	})
	return out, err
}

// Mutate submits a batch to the LEADER — the only fleet member that accepts
// writes.
func (f *FleetNamespace) Mutate(ctx context.Context, muts []serve.Mutation) (serve.MutationsResponse, error) {
	return f.leader.Mutate(ctx, muts)
}

// AwaitReplicated blocks until every replica serves generation >= gen (the
// leader is what published it). Use after a Mutate+Watch on the leader to
// know the whole fleet answers reads at the new generation.
func (f *FleetNamespace) AwaitReplicated(ctx context.Context, gen uint64) error {
	for _, r := range f.replicas {
		for {
			w, err := r.Watch(ctx, gen, time.Second)
			if err != nil {
				return err
			}
			if w.Generation >= gen {
				break
			}
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("serveclient: awaiting generation %d on replicas: %w", gen, err)
			}
		}
	}
	return nil
}
