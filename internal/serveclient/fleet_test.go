package serveclient_test

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cspm/internal/serve"
	"cspm/internal/serveclient"
)

// startFleet spins a leader host with one "alpha" tenant plus one live
// replica following it, both behind real HTTP.
func startFleet(t *testing.T) (lhs, rhs *httptest.Server) {
	t.Helper()
	leader, err := serve.NewHost(serve.HostOptions{RootDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close() })
	if _, err := leader.Create("alpha", testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	lhs = httptest.NewServer(leader)
	t.Cleanup(lhs.Close)
	replica, err := serve.NewHost(serve.HostOptions{
		RootDir:    t.TempDir(),
		Follow:     lhs.URL,
		FollowPoll: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { replica.Close() })
	rhs = httptest.NewServer(replica)
	t.Cleanup(rhs.Close)
	return lhs, rhs
}

// TestFleetReadWriteSplit drives the full fleet loop: writes land on the
// leader, AwaitReplicated observes the ship, and replica-balanced reads
// answer the new generation.
func TestFleetReadWriteSplit(t *testing.T) {
	lhs, rhs := startFleet(t)
	fleet, err := serveclient.NewFleet(lhs.URL, []string{rhs.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := ctxShort(t)
	fn := fleet.Namespace("alpha")
	if err := fn.AwaitReplicated(ctx, 1); err != nil {
		t.Fatal(err)
	}
	pats, err := fn.Patterns(ctx, serveclient.PatternsOptions{Limit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if pats.Generation != 1 || pats.Total == 0 {
		t.Fatalf("fleet patterns = gen %d, %d total; want generation 1 with patterns", pats.Generation, pats.Total)
	}

	// A write goes to the leader, folds there, and ships to the replica.
	if _, err := fn.Mutate(ctx, []serve.Mutation{{Op: serve.OpAddAttr, U: 0, Value: "cancer"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.Leader().Namespace("alpha").AwaitGeneration(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if err := fn.AwaitReplicated(ctx, 2); err != nil {
		t.Fatal(err)
	}
	lw, err := fleet.Leader().Namespace("alpha").Watch(ctx, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := fn.Model(ctx) // served by the replica
	if err != nil {
		t.Fatal(err)
	}
	rs, err := fn.Patterns(ctx, serveclient.PatternsOptions{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rm.Generation != lw.Generation || rs.Generation != lw.Generation {
		t.Fatalf("replica answers gen %d/%d, leader published %d", rm.Generation, rs.Generation, lw.Generation)
	}
	rw, err := fleet.Replicas()[0].Namespace("alpha").Watch(ctx, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rw.ModelSHA256 != lw.ModelSHA256 {
		t.Fatalf("replica model commitment %s, leader %s", rw.ModelSHA256, lw.ModelSHA256)
	}
}

// TestFleetFailoverSemantics pins the read-path error contract: an APIError
// from a replica is a real answer (no failover may mask it), while a dead
// replica transparently fails over to the leader.
func TestFleetFailoverSemantics(t *testing.T) {
	lhs, rhs := startFleet(t)
	ctx := ctxShort(t)

	// An answered rejection is returned as-is, not retried elsewhere.
	fleet, err := serveclient.NewFleet(lhs.URL, []string{rhs.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = fleet.Namespace("ghost").Patterns(ctx, serveclient.PatternsOptions{})
	var ae *serveclient.APIError
	if !errors.As(err, &ae) || ae.Code != serve.CodeNamespaceNotFound {
		t.Fatalf("unknown namespace read = %v, want an APIError with %s", err, serve.CodeNamespaceNotFound)
	}

	// A replica that stops answering transport-fails over to the leader.
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()
	fleet2, err := serveclient.NewFleet(lhs.URL, []string{deadURL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pats, err := fleet2.Namespace("alpha").Patterns(ctx, serveclient.PatternsOptions{Limit: 10})
	if err != nil {
		t.Fatalf("read with a dead replica = %v, want leader fallback", err)
	}
	if pats.Generation == 0 {
		t.Fatalf("leader fallback answered an empty response: %+v", pats)
	}

	// Every member dead: the error names the first replica failure.
	fleet3, err := serveclient.NewFleet("http://127.0.0.1:1", []string{deadURL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fleet3.Namespace("alpha").Patterns(ctx, serveclient.PatternsOptions{}); err == nil ||
		!strings.Contains(err.Error(), "every fleet member failed") {
		t.Fatalf("all-dead fleet read = %v, want the aggregated failure", err)
	}
}
