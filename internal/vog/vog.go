// Package vog implements a compact VOG-style graph summarizer (Koutra et
// al., paper [27]) as the topology-only point of comparison in the paper's
// Table I. VOG describes a graph by a vocabulary of structure types — full
// and near cliques, stars, chains, full and near bipartite cores — choosing
// the set of structures that minimises the description length of the
// adjacency information. It deliberately ignores vertex attributes, which
// is exactly the capability gap CSPM fills; the capability-matrix test in
// this package regenerates Table I's first column contrast.
package vog

import (
	"fmt"
	"math"
	"sort"

	"cspm/internal/graph"
)

// StructureType enumerates VOG's vocabulary.
type StructureType int

// The six structure types of VOG's vocabulary.
const (
	FullClique StructureType = iota
	NearClique
	Star
	Chain
	FullBipartiteCore
	NearBipartiteCore
	numTypes
)

func (t StructureType) String() string {
	switch t {
	case FullClique:
		return "full-clique"
	case NearClique:
		return "near-clique"
	case Star:
		return "star"
	case Chain:
		return "chain"
	case FullBipartiteCore:
		return "full-bipartite-core"
	case NearBipartiteCore:
		return "near-bipartite-core"
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// Structure is one summary element: a typed vertex set (with the bipartite
// split or chain order captured in Vertices' layout) plus its MDL costs.
type Structure struct {
	Type     StructureType
	Vertices []graph.VertexID // star: core first; bipartite: Left then Right
	Left     int              // size of the left side (bipartite types)
	Cost     float64          // bits to describe the structure itself
	ErrCost  float64          // bits for deviations (missing/extra edges)
	Covered  int              // present edges the structure explains
	Savings  float64          // baseline bits saved by keeping it
}

// Summary is the selected model plus bookkeeping.
type Summary struct {
	Structures []Structure
	BaselineDL float64 // all edges spelled out
	FinalDL    float64 // structures + leftover edges
}

// CompressionRatio is FinalDL/BaselineDL (≤ 1 when summarisation helps).
func (s Summary) CompressionRatio() float64 {
	if s.BaselineDL == 0 {
		return 1
	}
	return s.FinalDL / s.BaselineDL
}

// Summarize runs the VOG pipeline: generate candidate subgraphs (egonets of
// high-degree vertices), fit the best vocabulary type to each, and greedily
// keep candidates while they shrink the description length.
func Summarize(g *graph.Graph, maxStructures int) Summary {
	n := g.NumVertices()
	edgeBits := 2 * log2(float64(n)) // one edge spelled as a vertex-id pair
	baseline := float64(g.NumEdges()) * edgeBits
	sum := Summary{BaselineDL: baseline, FinalDL: baseline}
	if n == 0 || g.NumEdges() == 0 {
		return sum
	}
	// Candidates: egonets in decreasing hub order (SlashBurn's intuition:
	// hubs anchor the structures worth naming).
	order := make([]graph.VertexID, n)
	for v := range order {
		order[v] = graph.VertexID(v)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	covered := make(map[[2]graph.VertexID]bool)
	coverEdge := func(u, v graph.VertexID) [2]graph.VertexID {
		if u > v {
			u, v = v, u
		}
		return [2]graph.VertexID{u, v}
	}
	for _, hub := range order {
		if maxStructures > 0 && len(sum.Structures) >= maxStructures {
			break
		}
		if g.Degree(hub) < 2 {
			break // remaining vertices anchor nothing worth naming
		}
		members := append([]graph.VertexID{hub}, g.Neighbors(hub)...)
		best, ok := bestStructure(g, members, edgeBits, covered, coverEdge)
		if !ok || best.Savings <= 0 {
			continue
		}
		for _, e := range structureEdges(best) {
			if g.HasEdge(e[0], e[1]) {
				covered[coverEdge(e[0], e[1])] = true
			}
		}
		sum.FinalDL -= best.Savings
		sum.Structures = append(sum.Structures, best)
	}
	sort.SliceStable(sum.Structures, func(i, j int) bool {
		return sum.Structures[i].Savings > sum.Structures[j].Savings
	})
	return sum
}

// bestStructure fits every vocabulary type to the member set and returns
// the one with the largest savings against the per-edge baseline.
func bestStructure(g *graph.Graph, members []graph.VertexID, edgeBits float64,
	covered map[[2]graph.VertexID]bool, key func(u, v graph.VertexID) [2]graph.VertexID) (Structure, bool) {

	n := float64(g.NumVertices())
	idBits := log2(n)
	typeBits := log2(float64(numTypes))
	var best Structure
	found := false
	consider := func(s Structure) {
		// Savings: the present, not-yet-covered edges the structure explains
		// would otherwise cost edgeBits each.
		newCovered := 0
		missing := 0
		for _, e := range structureEdges(s) {
			if g.HasEdge(e[0], e[1]) {
				if !covered[key(e[0], e[1])] {
					newCovered++
				}
			} else {
				missing++
			}
		}
		s.Covered = newCovered
		s.Cost = typeBits + float64(len(s.Vertices)+1)*idBits // ids + length header
		s.ErrCost = float64(missing) * edgeBits               // spell out deviations
		s.Savings = float64(newCovered)*edgeBits - s.Cost - s.ErrCost
		if !found || s.Savings > best.Savings {
			best = s
			found = true
		}
	}

	core := members[0]
	leaves := members[1:]
	consider(Structure{Type: Star, Vertices: append([]graph.VertexID{core}, leaves...)})

	if len(members) >= 3 {
		// Clique over the egonet; near-clique is the same vertex set where
		// missing edges are tolerated (the error cost handles both, so the
		// label reflects how complete it is).
		clique := Structure{Type: FullClique, Vertices: append([]graph.VertexID(nil), members...)}
		present := 0
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if g.HasEdge(members[i], members[j]) {
					present++
				}
			}
		}
		possible := len(members) * (len(members) - 1) / 2
		if present < possible {
			clique.Type = NearClique
		}
		consider(clique)

		// Chain: a greedy path from the core. Unlike the other types the
		// chain may extend beyond the egonet — a path only pays off once it
		// is at least four vertices long (L−1 edges saved vs L+1 ids paid).
		limit := g.NumVertices()
		if limit > 256 {
			limit = 256
		}
		if path := longestPath(g, core, limit); len(path) >= 4 {
			consider(Structure{Type: Chain, Vertices: path})
		}

		// Bipartite core: the left side is the core plus any outside vertex
		// adjacent to most of the core's leaves (co-hubs). A star is the
		// 1×k degenerate case; a richer left side emerges when several hubs
		// share the same leaf set.
		inLeaves := make(map[graph.VertexID]bool, len(leaves))
		for _, r := range leaves {
			inLeaves[r] = true
		}
		coHub := make(map[graph.VertexID]int)
		for _, r := range leaves {
			for _, w := range g.Neighbors(r) {
				if w != core && !inLeaves[w] {
					coHub[w]++
				}
			}
		}
		left := []graph.VertexID{core}
		for w, cnt := range coHub {
			if 5*cnt >= 4*len(leaves) { // adjacent to ≥80% of the leaves
				left = append(left, w)
			}
		}
		sort.Slice(left, func(i, j int) bool { return left[i] < left[j] })
		if len(left) >= 2 && len(leaves) >= 2 {
			bip := Structure{
				Type:     FullBipartiteCore,
				Vertices: append(append([]graph.VertexID(nil), left...), leaves...),
				Left:     len(left),
			}
			full := true
			for _, l := range left {
				for _, r := range leaves {
					if !g.HasEdge(l, r) {
						full = false
					}
				}
			}
			if !full {
				bip.Type = NearBipartiteCore
			}
			consider(bip)
		}
	}
	return best, found
}

// structureEdges enumerates the edges a structure claims to explain.
func structureEdges(s Structure) [][2]graph.VertexID {
	var out [][2]graph.VertexID
	switch s.Type {
	case Star:
		core := s.Vertices[0]
		for _, leaf := range s.Vertices[1:] {
			out = append(out, [2]graph.VertexID{core, leaf})
		}
	case FullClique, NearClique:
		for i := 0; i < len(s.Vertices); i++ {
			for j := i + 1; j < len(s.Vertices); j++ {
				out = append(out, [2]graph.VertexID{s.Vertices[i], s.Vertices[j]})
			}
		}
	case Chain:
		for i := 1; i < len(s.Vertices); i++ {
			out = append(out, [2]graph.VertexID{s.Vertices[i-1], s.Vertices[i]})
		}
	case FullBipartiteCore, NearBipartiteCore:
		for _, l := range s.Vertices[:s.Left] {
			for _, r := range s.Vertices[s.Left:] {
				out = append(out, [2]graph.VertexID{l, r})
			}
		}
	}
	return out
}

// longestPath greedily extends a path from start (bounded DFS; chains in
// real graphs are short, so greedy degree-1-first extension suffices).
func longestPath(g *graph.Graph, start graph.VertexID, limit int) []graph.VertexID {
	path := []graph.VertexID{start}
	seen := map[graph.VertexID]bool{start: true}
	cur := start
	for len(path) < limit {
		var next graph.VertexID
		found := false
		bestDeg := math.MaxInt
		for _, u := range g.Neighbors(cur) {
			if seen[u] {
				continue
			}
			if d := g.Degree(u); d < bestDeg {
				bestDeg = d
				next = u
				found = true
			}
		}
		if !found {
			break
		}
		path = append(path, next)
		seen[next] = true
		cur = next
	}
	return path
}

func log2(x float64) float64 {
	if x <= 1 {
		return 1
	}
	return math.Log2(x)
}
