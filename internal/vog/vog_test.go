package vog

import (
	"math/rand"
	"strings"
	"testing"

	"cspm/internal/cspm"
	"cspm/internal/graph"
)

func starGraph(t *testing.T, leaves int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(leaves + 1)
	for l := 1; l <= leaves; l++ {
		_ = b.AddAttr(graph.VertexID(l), "leaf")
		if err := b.AddEdge(0, graph.VertexID(l)); err != nil {
			t.Fatal(err)
		}
	}
	_ = b.AddAttr(0, "hub")
	return b.Build()
}

func cliqueGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		_ = b.AddAttr(graph.VertexID(i), "m")
		for j := i + 1; j < n; j++ {
			if err := b.AddEdge(graph.VertexID(i), graph.VertexID(j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b.Build()
}

func chainGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddAttr(graph.VertexID(i), "c")
		if err := b.AddEdge(graph.VertexID(i-1), graph.VertexID(i)); err != nil {
			t.Fatal(err)
		}
	}
	_ = b.AddAttr(0, "c")
	return b.Build()
}

func TestSummarizeStar(t *testing.T) {
	g := starGraph(t, 20)
	s := Summarize(g, 0)
	if len(s.Structures) == 0 {
		t.Fatal("no structures found")
	}
	if s.Structures[0].Type != Star {
		t.Fatalf("top structure = %v, want star", s.Structures[0].Type)
	}
	if s.Structures[0].Vertices[0] != 0 {
		t.Fatal("star core should be the hub")
	}
	if s.FinalDL >= s.BaselineDL {
		t.Fatalf("summary did not compress: %v >= %v", s.FinalDL, s.BaselineDL)
	}
}

func TestSummarizeClique(t *testing.T) {
	g := cliqueGraph(t, 10)
	s := Summarize(g, 0)
	if len(s.Structures) == 0 {
		t.Fatal("no structures found")
	}
	if got := s.Structures[0].Type; got != FullClique {
		t.Fatalf("top structure = %v, want full-clique", got)
	}
	if s.CompressionRatio() >= 1 {
		t.Fatal("clique should compress massively")
	}
}

func TestSummarizeChain(t *testing.T) {
	g := chainGraph(t, 30)
	s := Summarize(g, 0)
	foundChain := false
	for _, st := range s.Structures {
		if st.Type == Chain && len(st.Vertices) >= 3 {
			foundChain = true
		}
	}
	if !foundChain {
		types := []string{}
		for _, st := range s.Structures {
			types = append(types, st.Type.String())
		}
		t.Fatalf("no chain found; got %s", strings.Join(types, ","))
	}
}

func TestSummarizeBipartite(t *testing.T) {
	// K_{3,6}: three hubs all connected to six leaves.
	b := graph.NewBuilder(9)
	for l := 0; l < 3; l++ {
		_ = b.AddAttr(graph.VertexID(l), "hub")
		for r := 3; r < 9; r++ {
			_ = b.AddEdge(graph.VertexID(l), graph.VertexID(r))
		}
	}
	for r := 3; r < 9; r++ {
		_ = b.AddAttr(graph.VertexID(r), "leaf")
	}
	g := b.Build()
	s := Summarize(g, 0)
	if len(s.Structures) == 0 {
		t.Fatal("no structures")
	}
	if got := s.Structures[0].Type; got != FullBipartiteCore {
		t.Fatalf("top structure = %v, want full-bipartite-core", got)
	}
	if s.Structures[0].Left != 3 {
		t.Fatalf("left side = %d, want 3", s.Structures[0].Left)
	}
}

func TestSummarizeEmptyAndEdgeless(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	if s := Summarize(empty, 0); len(s.Structures) != 0 || s.FinalDL != 0 {
		t.Fatal("empty graph should summarise to nothing")
	}
	b := graph.NewBuilder(3)
	_ = b.AddAttr(0, "x")
	if s := Summarize(b.Build(), 0); len(s.Structures) != 0 {
		t.Fatal("edgeless graph should have no structures")
	}
}

func TestSummarizeMaxStructures(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := graph.NewBuilder(60)
	for v := 1; v < 60; v++ {
		_ = b.AddAttr(graph.VertexID(v), "x")
		_ = b.AddEdge(graph.VertexID(v), graph.VertexID(rng.Intn(v)))
	}
	_ = b.AddAttr(0, "x")
	g := b.Build()
	full := Summarize(g, 0)
	if len(full.Structures) < 2 {
		t.Skip("graph too simple to test the cap")
	}
	capped := Summarize(g, 1)
	if len(capped.Structures) > 1 {
		t.Fatalf("cap ignored: %d structures", len(capped.Structures))
	}
}

func TestStructureTypeStrings(t *testing.T) {
	for ty := FullClique; ty < numTypes; ty++ {
		if s := ty.String(); s == "" || strings.HasPrefix(s, "type(") {
			t.Fatalf("missing name for type %d", int(ty))
		}
	}
	if !strings.HasPrefix(StructureType(99).String(), "type(") {
		t.Fatal("unknown type should render as type(N)")
	}
}

// TestTable1Contrast regenerates the paper's Table I distinction: on a graph
// whose only signal is attribute correlation (uniform topology), VOG's
// structures say nothing about attributes while CSPM finds the rule.
func TestTable1Contrast(t *testing.T) {
	// A long cycle where even vertices carry "x" and their neighbours "y":
	// topologically boring, attribute-wise perfectly correlated.
	const n = 60
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		if v%2 == 0 {
			_ = b.AddAttr(graph.VertexID(v), "x")
		} else {
			_ = b.AddAttr(graph.VertexID(v), "y")
		}
		_ = b.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%n))
	}
	g := b.Build()

	model := cspm.Mine(g)
	foundRule := false
	for _, p := range model.Patterns {
		if p.Format(g.Vocab()) == "({x}, {y})" && p.Confidence() == 1 {
			foundRule = true
		}
	}
	if !foundRule {
		t.Fatal("CSPM missed the attribute rule ({x},{y})")
	}
	// VOG, by design, never mentions attributes — its output is purely
	// structural. (This is Table I's "Attribute patterns?" row.)
	s := Summarize(g, 0)
	for _, st := range s.Structures {
		_ = st.Type // structures carry no attribute information at all
	}
}
