// Package intset provides sorted, duplicate-free sets of uint32 identifiers.
//
// CSPM stores the positions (vertex identifiers) of every inverted-database
// line as an intset. The merge step of the miner is dominated by position-set
// intersections, so the representation is a plain sorted slice: intersection
// and difference run as linear merges with no allocation beyond the result,
// and the iteration order is deterministic, which keeps mining runs
// reproducible.
package intset

import (
	"cmp"
	"sort"
)

// Set is a sorted slice of distinct uint32 values. The zero value is an empty
// set ready to use. All operations treat the receiver as immutable unless
// documented otherwise.
type Set []uint32

// New builds a Set from arbitrary values, sorting and de-duplicating them.
func New(vals ...uint32) Set {
	if len(vals) == 0 {
		return nil
	}
	s := make(Set, len(vals))
	copy(s, vals)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// FromSorted wraps an already sorted, duplicate-free slice without copying.
// The caller must not mutate vals afterwards.
func FromSorted(vals []uint32) Set { return Set(vals) }

// Len reports the number of elements.
func (s Set) Len() int { return len(s) }

// Empty reports whether the set has no elements.
func (s Set) Empty() bool { return len(s) == 0 }

// Contains reports whether v is in the set.
func (s Set) Contains(v uint32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	if len(s) == 0 {
		return nil
	}
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Equal reports whether s and t contain the same elements.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i, v := range s {
		if t[i] != v {
			return false
		}
	}
	return true
}

// gallopRatio is the size skew at which intersection switches from the
// linear merge to galloping search over the larger operand. CSPM's gain
// evaluation intersects a pattern's (often short) position list with big
// coreset-frequency lines, where galloping wins by an order of magnitude.
const gallopRatio = 16

// Intersect returns the elements present in both s and t.
func (s Set) Intersect(t Set) Set {
	if len(s) == 0 || len(t) == 0 {
		return nil
	}
	if len(t) > gallopRatio*len(s) {
		return gallopIntersect(s, t)
	}
	if len(s) > gallopRatio*len(t) {
		return gallopIntersect(t, s)
	}
	var out Set
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		a, b := s[i], t[j]
		switch {
		case a < b:
			i++
		case a > b:
			j++
		default:
			out = append(out, a)
			i++
			j++
		}
	}
	return out
}

// Seek returns the smallest index i >= lo with s[i] >= v (len(s) if none):
// an exponential probe from lo narrows the range, a binary search finishes.
// Successive seeks with ascending v and the returned lo give galloping
// traversal, O(|probes|·log(gap)). Exported generically so every gallop
// cursor in the system (position sets here, the inverted database's sorted
// id slices) shares the one implementation.
func Seek[E cmp.Ordered](s []E, v E, lo int) int {
	step := 1
	hi := lo
	for hi < len(s) && s[hi] < v {
		hi = lo + step
		step <<= 1
	}
	if hi > len(s) {
		hi = len(s)
	}
	a, b := lo, hi
	for a < b {
		mid := int(uint(a+b) >> 1)
		if s[mid] < v {
			a = mid + 1
		} else {
			b = mid
		}
	}
	return a
}

func seek(s Set, v uint32, lo int) int { return Seek(s, v, lo) }

// gallopIntersect intersects small into big using exponential + binary
// search, O(|small|·log(|big|/|small|)).
func gallopIntersect(small, big Set) Set {
	var out Set
	lo := 0
	for _, v := range small {
		lo = seek(big, v, lo)
		if lo >= len(big) {
			break
		}
		if big[lo] == v {
			out = append(out, v)
			lo++
			if lo >= len(big) {
				break
			}
		}
	}
	return out
}

// IntersectCount returns |s ∩ t| without materialising the intersection.
func (s Set) IntersectCount(t Set) int {
	if len(s) == 0 || len(t) == 0 {
		return 0
	}
	if len(t) > gallopRatio*len(s) {
		return gallopCount(s, t)
	}
	if len(s) > gallopRatio*len(t) {
		return gallopCount(t, s)
	}
	n := 0
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		a, b := s[i], t[j]
		switch {
		case a < b:
			i++
		case a > b:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

func gallopCount(small, big Set) int {
	n := 0
	lo := 0
	for _, v := range small {
		lo = seek(big, v, lo)
		if lo >= len(big) {
			break
		}
		if big[lo] == v {
			n++
			lo++
			if lo >= len(big) {
				break
			}
		}
	}
	return n
}

// Diff returns the elements of s not present in t.
func (s Set) Diff(t Set) Set {
	if len(s) == 0 {
		return nil
	}
	if len(t) == 0 {
		return s.Clone()
	}
	var out Set
	i, j := 0, 0
	for i < len(s) {
		if j >= len(t) || s[i] < t[j] {
			out = append(out, s[i])
			i++
		} else if s[i] > t[j] {
			j++
		} else {
			i++
			j++
		}
	}
	return out
}

// Union returns the elements present in either set.
func (s Set) Union(t Set) Set {
	if len(s) == 0 {
		return t.Clone()
	}
	if len(t) == 0 {
		return s.Clone()
	}
	out := make(Set, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		a, b := s[i], t[j]
		switch {
		case a < b:
			out = append(out, a)
			i++
		case a > b:
			out = append(out, b)
			j++
		default:
			out = append(out, a)
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Add returns a set containing the elements of s plus v. The receiver is not
// modified; when v is already present the receiver itself is returned.
func (s Set) Add(v uint32) Set {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	out := make(Set, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, v)
	out = append(out, s[i:]...)
	return out
}

// Values exposes the underlying sorted slice. Callers must not modify it.
func (s Set) Values() []uint32 { return s }
