package intset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDedupes(t *testing.T) {
	s := New(5, 1, 3, 1, 5, 2)
	want := Set{1, 2, 3, 5}
	if !s.Equal(want) {
		t.Fatalf("New = %v, want %v", s, want)
	}
}

func TestNewEmpty(t *testing.T) {
	if s := New(); !s.Empty() || s.Len() != 0 {
		t.Fatalf("New() = %v, want empty", s)
	}
}

func TestContains(t *testing.T) {
	s := New(2, 4, 6, 8)
	for _, v := range []uint32{2, 4, 6, 8} {
		if !s.Contains(v) {
			t.Errorf("Contains(%d) = false, want true", v)
		}
	}
	for _, v := range []uint32{0, 1, 3, 5, 7, 9} {
		if s.Contains(v) {
			t.Errorf("Contains(%d) = true, want false", v)
		}
	}
}

func TestIntersectBasic(t *testing.T) {
	a := New(1, 2, 3, 4, 5)
	b := New(2, 4, 6)
	got := a.Intersect(b)
	if !got.Equal(New(2, 4)) {
		t.Fatalf("Intersect = %v, want [2 4]", got)
	}
	if n := a.IntersectCount(b); n != 2 {
		t.Fatalf("IntersectCount = %d, want 2", n)
	}
}

func TestIntersectDisjoint(t *testing.T) {
	a := New(1, 3, 5)
	b := New(2, 4, 6)
	if got := a.Intersect(b); !got.Empty() {
		t.Fatalf("Intersect = %v, want empty", got)
	}
	if n := a.IntersectCount(b); n != 0 {
		t.Fatalf("IntersectCount = %d, want 0", n)
	}
}

func TestDiffBasic(t *testing.T) {
	a := New(1, 2, 3, 4)
	b := New(2, 4)
	if got := a.Diff(b); !got.Equal(New(1, 3)) {
		t.Fatalf("Diff = %v, want [1 3]", got)
	}
	if got := b.Diff(a); !got.Empty() {
		t.Fatalf("Diff = %v, want empty", got)
	}
}

func TestUnionBasic(t *testing.T) {
	a := New(1, 3)
	b := New(2, 3, 5)
	if got := a.Union(b); !got.Equal(New(1, 2, 3, 5)) {
		t.Fatalf("Union = %v", got)
	}
}

func TestAddImmutable(t *testing.T) {
	a := New(1, 3)
	b := a.Add(2)
	if !b.Equal(New(1, 2, 3)) {
		t.Fatalf("Add = %v", b)
	}
	if !a.Equal(New(1, 3)) {
		t.Fatalf("receiver mutated: %v", a)
	}
	// Adding an existing element returns the receiver unchanged.
	c := a.Add(3)
	if !c.Equal(a) {
		t.Fatalf("Add existing = %v", c)
	}
}

func TestEmptyOperands(t *testing.T) {
	var empty Set
	s := New(1, 2)
	if got := empty.Intersect(s); !got.Empty() {
		t.Errorf("empty∩s = %v", got)
	}
	if got := s.Diff(empty); !got.Equal(s) {
		t.Errorf("s∖empty = %v", got)
	}
	if got := empty.Union(s); !got.Equal(s) {
		t.Errorf("empty∪s = %v", got)
	}
	if got := empty.Diff(s); !got.Empty() {
		t.Errorf("empty∖s = %v", got)
	}
}

// refSet is the map-based reference model for the property tests.
type refSet map[uint32]struct{}

func toRef(s Set) refSet {
	r := make(refSet, len(s))
	for _, v := range s {
		r[v] = struct{}{}
	}
	return r
}

func fromRef(r refSet) Set {
	out := make([]uint32, 0, len(r))
	for v := range r {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return FromSorted(out)
}

func randomSet(rng *rand.Rand, maxVal uint32) Set {
	n := rng.Intn(40)
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = rng.Uint32() % maxVal
	}
	return New(vals...)
}

func TestPropertyOpsMatchReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r, 64)
		b := randomSet(r, 64)
		ra, rb := toRef(a), toRef(b)

		inter := make(refSet)
		for v := range ra {
			if _, ok := rb[v]; ok {
				inter[v] = struct{}{}
			}
		}
		diff := make(refSet)
		for v := range ra {
			if _, ok := rb[v]; !ok {
				diff[v] = struct{}{}
			}
		}
		union := make(refSet)
		for v := range ra {
			union[v] = struct{}{}
		}
		for v := range rb {
			union[v] = struct{}{}
		}
		if !a.Intersect(b).Equal(fromRef(inter)) {
			return false
		}
		if a.IntersectCount(b) != len(inter) {
			return false
		}
		if !a.Diff(b).Equal(fromRef(diff)) {
			return false
		}
		if !a.Union(b).Equal(fromRef(union)) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAlgebraicIdentities(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r, 50)
		b := randomSet(r, 50)
		// |A| = |A∩B| + |A∖B|
		if a.Len() != a.IntersectCount(b)+a.Diff(b).Len() {
			return false
		}
		// |A∪B| = |A| + |B| − |A∩B|
		if a.Union(b).Len() != a.Len()+b.Len()-a.IntersectCount(b) {
			return false
		}
		// Commutativity
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		// (A∖B) ∩ B = ∅
		if !a.Diff(b).Intersect(b).Empty() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(1, 2, 3)
	c := a.Clone()
	c[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone shares backing array")
	}
}

// TestGallopMatchesLinear forces both code paths onto the same inputs.
func TestGallopMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		small := randomSet(rng, 40) // ≤ ~40 values in [0,40)
		bigVals := make([]uint32, 0, 2000)
		for i := 0; i < 2000; i++ {
			bigVals = append(bigVals, rng.Uint32()%4000)
		}
		big := New(bigVals...)
		// Reference: brute-force membership.
		want := 0
		var wantSet Set
		for _, v := range small {
			if big.Contains(v) {
				want++
				wantSet = append(wantSet, v)
			}
		}
		if got := small.IntersectCount(big); got != want {
			t.Fatalf("trial %d: count %d, want %d", trial, got, want)
		}
		if got := big.IntersectCount(small); got != want {
			t.Fatalf("trial %d: reversed count %d, want %d", trial, got, want)
		}
		if got := small.Intersect(big); !got.Equal(wantSet) {
			t.Fatalf("trial %d: intersect %v, want %v", trial, got, wantSet)
		}
		if got := big.Intersect(small); !got.Equal(wantSet) {
			t.Fatalf("trial %d: reversed intersect %v, want %v", trial, got, wantSet)
		}
	}
}

func BenchmarkIntersectBalanced(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]uint32, 1000)
	y := make([]uint32, 1000)
	for i := range x {
		x[i] = rng.Uint32() % 10000
		y[i] = rng.Uint32() % 10000
	}
	a, c := New(x...), New(y...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.IntersectCount(c)
	}
}

func BenchmarkIntersectSkewed(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := make([]uint32, 20)
	y := make([]uint32, 20000)
	for i := range x {
		x[i] = rng.Uint32() % 100000
	}
	for i := range y {
		y[i] = rng.Uint32() % 100000
	}
	a, c := New(x...), New(y...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.IntersectCount(c)
	}
}
