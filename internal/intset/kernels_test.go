package intset

import (
	"math/rand"
	"testing"
)

// naiveIntersect is the reference linear merge the fused kernels must agree
// with element-for-element.
func naiveIntersect(s, t Set) Set {
	var out Set
	for _, v := range s {
		for _, w := range t {
			if v == w {
				out = append(out, v)
			}
		}
	}
	return out
}

func naiveDiff(s, t Set) Set {
	var out Set
	for _, v := range s {
		found := false
		for _, w := range t {
			if v == w {
				found = true
				break
			}
		}
		if !found {
			out = append(out, v)
		}
	}
	return out
}

func naiveUnion(s, t Set) Set {
	out := s.Clone()
	for _, v := range t {
		out = out.Add(v)
	}
	return out
}

// randSet draws a sorted duplicate-free set of roughly n values below max.
// Small max values force dense overlaps; large max values force sparse ones.
func randSet(rng *rand.Rand, n, max int) Set {
	vals := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		vals = append(vals, uint32(rng.Intn(max)))
	}
	return New(vals...)
}

// sizePairs covers the linear path and both galloping directions
// (gallopRatio is 16, so 4→200 and 200→4 take the galloping branch).
var sizePairs = [][2]int{
	{0, 0}, {0, 30}, {30, 0}, {1, 1}, {8, 9},
	{30, 30}, {4, 200}, {200, 4}, {1, 500}, {500, 1}, {100, 120},
}

func TestIntersectCountAndDiffCountDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		sz := sizePairs[trial%len(sizePairs)]
		max := []int{16, 64, 1024, 1 << 20}[trial%4]
		x := randSet(rng, sz[0], max)
		y := randSet(rng, sz[1], max)
		var z Set
		switch trial % 3 {
		case 0: // unrelated z
			z = randSet(rng, 40, max)
		case 1: // z ⊇ parts of the intersection
			z = naiveIntersect(x, y)
			if len(z) > 1 {
				z = z[:len(z)/2].Clone()
			}
		case 2: // empty z
			z = nil
		}
		inter := naiveIntersect(x, y)
		wantN := len(inter)
		wantD := len(naiveDiff(inter, z))
		n, d := IntersectCountAndDiffCount(x, y, z)
		if n != wantN || d != wantD {
			t.Fatalf("trial %d: IntersectCountAndDiffCount(|x|=%d,|y|=%d,|z|=%d) = (%d,%d), want (%d,%d)",
				trial, len(x), len(y), len(z), n, d, wantN, wantD)
		}
		// The fused kernel must agree with the argument-swapped call and the
		// existing unfused count.
		n2, d2 := IntersectCountAndDiffCount(y, x, z)
		if n2 != n || d2 != d {
			t.Fatalf("trial %d: kernel is order-sensitive: (%d,%d) vs (%d,%d)", trial, n, d, n2, d2)
		}
		if c := x.IntersectCount(y); c != wantN {
			t.Fatalf("trial %d: IntersectCount = %d, want %d", trial, c, wantN)
		}
	}
}

func TestIntoKernelsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var scratch Set // reused across trials to exercise buffer reuse
	for trial := 0; trial < 300; trial++ {
		sz := sizePairs[trial%len(sizePairs)]
		max := []int{16, 64, 1024, 1 << 20}[trial%4]
		s := randSet(rng, sz[0], max)
		t2 := randSet(rng, sz[1], max)

		scratch = s.IntersectInto(t2, scratch)
		if want := naiveIntersect(s, t2); !scratch.Equal(want) {
			t.Fatalf("trial %d: IntersectInto = %v, want %v", trial, scratch, want)
		}
		if want := s.Intersect(t2); !scratch.Equal(want) {
			t.Fatalf("trial %d: IntersectInto disagrees with Intersect", trial)
		}

		scratch = s.DiffInto(t2, scratch)
		if want := naiveDiff(s, t2); !scratch.Equal(want) {
			t.Fatalf("trial %d: DiffInto = %v, want %v", trial, scratch, want)
		}
		if want := s.Diff(t2); !scratch.Equal(want) {
			t.Fatalf("trial %d: DiffInto disagrees with Diff", trial)
		}

		scratch = s.UnionInto(t2, scratch)
		if want := naiveUnion(s, t2); !scratch.Equal(want) {
			t.Fatalf("trial %d: UnionInto = %v, want %v", trial, scratch, want)
		}
	}
}

func TestIntoKernelsAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randSet(rng, 400, 4096)
	t2 := randSet(rng, 400, 4096)
	z := randSet(rng, 100, 4096)
	scratch := make(Set, 0, 1024)
	allocs := testing.AllocsPerRun(50, func() {
		scratch = s.IntersectInto(t2, scratch)
		scratch = s.DiffInto(t2, scratch)
		scratch = s.UnionInto(t2, scratch)
		IntersectCountAndDiffCount(s, t2, z)
	})
	if allocs != 0 {
		t.Fatalf("scratch kernels allocated %v times per run, want 0", allocs)
	}
}

// fuzzSets decodes two byte streams into sorted sets; the fuzzer explores
// adversarial shapes (runs, duplicates, extreme skew) the random tests may
// miss.
func fuzzSets(a, b []byte) (Set, Set) {
	mk := func(bs []byte) Set {
		vals := make([]uint32, 0, len(bs))
		acc := uint32(0)
		for _, c := range bs {
			acc += uint32(c) + 1 // strictly increasing deltas ⇒ sorted input
			vals = append(vals, acc)
		}
		return New(vals...)
	}
	return mk(a), mk(b)
}

func FuzzIntersectCountAndDiffCount(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4}, []byte{1})
	f.Add([]byte{}, []byte{5}, []byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, []byte{7}, []byte{1, 1})
	f.Fuzz(func(t *testing.T, a, b, c []byte) {
		x, y := fuzzSets(a, b)
		z, _ := fuzzSets(c, nil)
		inter := naiveIntersect(x, y)
		wantN := len(inter)
		wantD := len(naiveDiff(inter, z))
		if n, d := IntersectCountAndDiffCount(x, y, z); n != wantN || d != wantD {
			t.Fatalf("kernel = (%d,%d), want (%d,%d) on x=%v y=%v z=%v", n, d, wantN, wantD, x, y, z)
		}
	})
}

func FuzzIntersectInto(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Add([]byte{0}, []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		s, t2 := fuzzSets(a, b)
		if got := s.IntersectInto(t2, nil); !got.Equal(naiveIntersect(s, t2)) {
			t.Fatalf("IntersectInto = %v, want %v on s=%v t=%v", got, naiveIntersect(s, t2), s, t2)
		}
		if got := s.DiffInto(t2, nil); !got.Equal(naiveDiff(s, t2)) {
			t.Fatalf("DiffInto = %v, want %v on s=%v t=%v", got, naiveDiff(s, t2), s, t2)
		}
	})
}
