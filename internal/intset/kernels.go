package intset

// Fused counting kernels and scratch-buffer variants for the merge-gain hot
// path. EvalMerge must never allocate in steady state (DESIGN.md "scratch
// arenas"), so every operation here either returns plain counts or writes
// into a caller-owned buffer. All kernels agree element-for-element with the
// naive linear merges (see kernels_test.go's differential tests); the
// galloping variants only change the traversal, never the result.

// IntersectCountAndDiffCount returns n = |x ∩ y| and d = |(x ∩ y) \ z| in a
// single pass with no materialisation. It fuses the IntersectCount +
// Intersect + Diff sequence of the three-line merge case (Eq. 9's x, y and
// union-collision z line): the elements of x ∩ y are produced in ascending
// order, so membership in z is resolved with one forward-galloping cursor.
func IntersectCountAndDiffCount(x, y, z Set) (n, d int) {
	if len(x) > len(y) {
		x, y = y, x
	}
	if len(x) == 0 {
		return 0, 0
	}
	zi := 0
	if len(y) > gallopRatio*len(x) {
		lo := 0
		for _, v := range x {
			lo = seek(y, v, lo)
			if lo >= len(y) {
				break
			}
			if y[lo] == v {
				n++
				zi = seek(z, v, zi)
				if zi >= len(z) || z[zi] != v {
					d++
				}
				lo++
				if lo >= len(y) {
					break
				}
			}
		}
		return n, d
	}
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		a, b := x[i], y[j]
		switch {
		case a < b:
			i++
		case a > b:
			j++
		default:
			n++
			zi = seek(z, a, zi)
			if zi >= len(z) || z[zi] != a {
				d++
			}
			i++
			j++
		}
	}
	return n, d
}

// IntersectInto writes s ∩ t into dst[:0] and returns the result, reusing
// dst's capacity. The caller owns dst; s and t are read only.
func (s Set) IntersectInto(t Set, dst Set) Set {
	dst = dst[:0]
	if len(s) == 0 || len(t) == 0 {
		return dst
	}
	if len(t) > gallopRatio*len(s) {
		return gallopIntersectInto(s, t, dst)
	}
	if len(s) > gallopRatio*len(t) {
		return gallopIntersectInto(t, s, dst)
	}
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		a, b := s[i], t[j]
		switch {
		case a < b:
			i++
		case a > b:
			j++
		default:
			dst = append(dst, a)
			i++
			j++
		}
	}
	return dst
}

func gallopIntersectInto(small, big, dst Set) Set {
	lo := 0
	for _, v := range small {
		lo = seek(big, v, lo)
		if lo >= len(big) {
			break
		}
		if big[lo] == v {
			dst = append(dst, v)
			lo++
			if lo >= len(big) {
				break
			}
		}
	}
	return dst
}

// DiffInto writes s \ t into dst[:0] and returns the result, reusing dst's
// capacity. When t is much larger than s the subtrahend is galloped over.
// DiffInto and UnionInto are not used by the merge evaluator itself —
// ApplyMerge stores its results, so it must allocate — they complete the
// scratch-kernel API for transient set arithmetic (incremental/dynamic
// update paths).
func (s Set) DiffInto(t Set, dst Set) Set {
	dst = dst[:0]
	if len(s) == 0 {
		return dst
	}
	if len(t) > gallopRatio*len(s) {
		lo := 0
		for _, v := range s {
			lo = seek(t, v, lo)
			if lo >= len(t) || t[lo] != v {
				dst = append(dst, v)
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(s) {
		if j >= len(t) || s[i] < t[j] {
			dst = append(dst, s[i])
			i++
		} else if s[i] > t[j] {
			j++
		} else {
			i++
			j++
		}
	}
	return dst
}

// UnionInto writes s ∪ t into dst[:0] and returns the result, reusing dst's
// capacity. dst must not alias s or t.
func (s Set) UnionInto(t Set, dst Set) Set {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		a, b := s[i], t[j]
		switch {
		case a < b:
			dst = append(dst, a)
			i++
		case a > b:
			dst = append(dst, b)
			j++
		default:
			dst = append(dst, a)
			i++
			j++
		}
	}
	dst = append(dst, s[i:]...)
	dst = append(dst, t[j:]...)
	return dst
}
