module cspm

go 1.24
