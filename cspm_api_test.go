package cspm_test

import (
	"bytes"
	"strings"
	"testing"

	"cspm"
)

// fig1 builds the paper's running example through the public API.
func fig1(t testing.TB) *cspm.Graph {
	t.Helper()
	b := cspm.NewBuilder(5)
	for v, vals := range map[cspm.VertexID][]string{
		0: {"a"}, 1: {"a", "c"}, 2: {"c"}, 3: {"b"}, 4: {"a", "b"},
	} {
		for _, val := range vals {
			if err := b.AddAttr(v, val); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range [][2]cspm.VertexID{{0, 1}, {0, 2}, {0, 3}, {2, 4}, {3, 4}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestPublicMine(t *testing.T) {
	g := fig1(t)
	m := cspm.Mine(g)
	if m.FinalDL > m.BaselineDL {
		t.Fatal("Mine expanded the description length")
	}
	found := false
	for _, p := range m.MultiLeaf() {
		if p.Format(g.Vocab()) == "({a}, {b c})" {
			found = true
		}
	}
	if !found {
		t.Error("paper's worked pattern missing from public Mine output")
	}
}

func TestPublicMineWithOptionsVariants(t *testing.T) {
	g := fig1(t)
	basic := cspm.MineWithOptions(g, cspm.Options{Variant: cspm.Basic})
	partial := cspm.MineWithOptions(g, cspm.Options{Variant: cspm.Partial})
	if basic.FinalDL != partial.FinalDL {
		t.Fatalf("variants disagree on fig1: %v vs %v", basic.FinalDL, partial.FinalDL)
	}
}

func TestPublicMineMultiCore(t *testing.T) {
	// A graph where {x,y} always co-occur: SLIM should select the pair as a
	// coreset, and the a-stars should carry the two-value core.
	b := cspm.NewBuilder(8)
	for v := cspm.VertexID(0); v < 4; v++ {
		_ = b.AddAttr(v, "x")
		_ = b.AddAttr(v, "y")
		leaf := v + 4
		_ = b.AddAttr(leaf, "z")
		_ = b.AddEdge(v, leaf)
		if v > 0 {
			_ = b.AddEdge(v, v-1)
		}
	}
	g := b.Build()
	m, err := cspm.MineMultiCore(g)
	if err != nil {
		t.Fatal(err)
	}
	foundMulti := false
	for _, p := range m.Patterns {
		if len(p.CoreValues) == 2 {
			foundMulti = true
		}
	}
	if !foundMulti {
		t.Error("MineMultiCore produced no multi-value coreset patterns")
	}
}

func TestPublicLoadWrite(t *testing.T) {
	g := fig1(t)
	var buf bytes.Buffer
	if err := cspm.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := cspm.Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 5 || g2.NumEdges() != 5 {
		t.Fatalf("round trip changed shape: %d vertices %d edges", g2.NumVertices(), g2.NumEdges())
	}
	m1, m2 := cspm.Mine(g), cspm.Mine(g2)
	if len(m1.Patterns) != len(m2.Patterns) {
		t.Fatal("round-tripped graph mines differently")
	}
}

func TestPublicCompletionPipeline(t *testing.T) {
	// Wire the full Fig. 7 pipeline through the public API on a small
	// homophilous graph.
	b := cspm.NewBuilder(40)
	for v := cspm.VertexID(0); v < 40; v++ {
		if v%2 == 0 {
			_ = b.AddAttr(v, "even")
			_ = b.AddAttr(v, "red")
		} else {
			_ = b.AddAttr(v, "odd")
			_ = b.AddAttr(v, "blue")
		}
		if v > 1 {
			_ = b.AddEdge(v, v-2) // even chain and odd chain
		}
	}
	_ = b.AddEdge(0, 1) // connect the chains
	g := b.Build()
	task, err := cspm.NewCompletionTask(g, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	model := cspm.Mine(task.TrainGraph())
	scorer := cspm.NewScorer(model, task.TrainGraph())
	scores := scorer.ScoreMatrix(task)
	metrics := cspm.EvaluateCompletion(task, scores, []int{2})
	// Same-parity neighbours share both values: CSPM alone should complete
	// most hidden nodes within the top 2.
	if metrics.RecallAtK[2] < 0.5 {
		t.Fatalf("recall@2 = %v on a trivially homophilous graph", metrics.RecallAtK[2])
	}
	fused := cspm.Fuse(scores, scores, task.TestNodes)
	if fused == nil {
		t.Fatal("Fuse returned nil")
	}
}

func TestPublicTaskValidation(t *testing.T) {
	g := fig1(t)
	if _, err := cspm.NewCompletionTask(g, 0, 1); err == nil {
		t.Fatal("zero test fraction accepted")
	}
}
